"""Command-line interface: run reproduction experiments without writing code.

Usage::

    python -m repro list                      # what can be reproduced
    python -m repro run figure2a              # regenerate one figure
    python -m repro run figure2b --out f.txt  # save the table
    python -m repro run figure2a --json       # machine-readable rows
    python -m repro run figure3c --obs-json obs.json   # spans + metrics
    python -m repro demo                      # 30-second functional demo
    python -m repro cost                      # §6.3.3 dollar-cost estimate
    python -m repro plan --users 1000000      # capacity planner (cost model)
    python -m repro plan --check              # assert cost model == ledger
    python -m repro obs                       # metrics + obliviousness audit
    python -m repro trace --chrome t.json     # merged trace -> Perfetto JSON
    python -m repro top localhost:9464        # live telemetry terminal view
    python -m repro doctor localhost:9464     # name the bottleneck (or healthy)
    python -m repro profile --seconds 2       # sampling profiler, collapsed stacks
    python -m repro bench check               # regression gate vs BENCH history

Experiment names match :mod:`repro.harness.experiments` (``table2``,
``figure2a`` … ``figure6``, ``fhe_noise``, ``dollar_cost``).  The global
``--log-level`` flag (before the subcommand) configures the ``repro.*``
logger hierarchy.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Sequence

from repro import obs
from repro.errors import OrtoaError
from repro.harness import experiments
from repro.harness.bench import DEFAULT_HISTORY, DEFAULT_THRESHOLD
from repro.harness.report import render_table, rows_to_csv
from repro.obs.logging import LEVELS

#: name -> (callable, one-line description)
EXPERIMENTS = {
    "table2": (experiments.table2, "Table 2: cross-datacenter RTTs"),
    "figure2a": (experiments.figure2a, "Fig 2a: latency/throughput vs distance"),
    "figure2b": (experiments.figure2b, "Fig 2b: concurrency sweep"),
    "figure2c": (experiments.figure2c, "Fig 2c: write-percentage sweep"),
    "figure2d": (experiments.figure2d, "Fig 2d: database-size sweep"),
    "figure3a": (experiments.figure3a, "Fig 3a: scaling proxy/server pairs"),
    "figure3b": (experiments.figure3b, "Fig 3b: value-size sweep vs baseline"),
    "figure3c": (experiments.figure3c, "Fig 3c: LBL latency breakdown"),
    "figure3d": (experiments.figure3d, "Fig 3d: GDPR/EU placement"),
    "figure4": (experiments.figure4, "Fig 4: real-world datasets"),
    "figure6": (experiments.figure6, "Fig 6: y-grouping overhead factors"),
    "fhe_noise": (experiments.fhe_noise, "§3.3: FHE noise exhaustion"),
    "dollar_cost": (experiments.dollar_cost, "§6.3.3: LBL dollar cost"),
    "oram": (experiments.oram_comparison, "§8: one-round ORAM vs PathORAM vs linear scan"),
    "sharded": (experiments.sharded_scaling, "§6.2.4 over TCP: shard-count scaling"),
    "pipeline": (experiments.pipeline_depth_sweep, "pipelined vs lockstep transport"),
    "lbl": (experiments.lbl_kernels, "crypto kernels: scalar vs batched vs cached"),
}

#: CLI flag -> experiment keyword argument, forwarded when the experiment
#: accepts it (see ``repro run --shards/--pipeline-depth/--workers``).
_RUN_OVERRIDES = {
    "shards": "shards",
    "pipeline_depth": "pipeline_depth",
    "workers": "workers",
    "label_cache": "label_cache",
    "crypto_backend": "crypto_backend",
    "transport": "transport",
    "coalesce_window": "coalesce_window",
    "server_batch": "server_batch",
    "server_window": "server_window",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_fn, description) in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        fn, description = EXPERIMENTS[args.experiment]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: {known}", file=sys.stderr)
        return 2
    import inspect

    accepted = inspect.signature(fn).parameters
    kwargs = {}
    for flag, keyword in _RUN_OVERRIDES.items():
        value = getattr(args, flag, None)
        if value is None:
            continue
        if keyword not in accepted:
            print(
                f"experiment {args.experiment!r} does not take --{flag.replace('_', '-')}",
                file=sys.stderr,
            )
            return 2
        kwargs[keyword] = value
    fn_with_args = lambda: fn(**kwargs)  # noqa: E731
    if args.obs_json:
        with obs.capture():
            rows = fn_with_args()
            bundle = obs.export()
        bundle["experiment"] = args.experiment
        with open(args.obs_json, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, default=str)
        print(
            f"wrote {len(bundle['spans'])} spans and "
            f"{sum(len(v) for v in bundle['metrics'].values())} metrics "
            f"to {args.obs_json}"
        )
    else:
        rows = fn_with_args()
    if args.json:
        text = json.dumps(rows, indent=2, default=str)
    elif args.format == "csv":
        text = rows_to_csv(rows)
    else:
        text = render_table(description, rows)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro import LblOrtoa, Request, StoreConfig

    config = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)
    store = LblOrtoa(config)
    store.initialize({"demo": b"hello"})
    store.write("demo", b"world")
    value = store.read("demo").rstrip(b"\x00")
    read_t = store.access(Request.read("demo"))
    write_t = store.access(Request.write("demo", config.pad(b"again")))
    print(f"read back: {value!r}")
    print(
        f"read vs write wire bytes: {read_t.request_bytes} vs "
        f"{write_t.request_bytes} (identical => op type hidden)"
    )
    print(f"round trips per access: {read_t.num_rounds} (baseline needs 2)")
    return 0


def _cmd_cost(_args: argparse.Namespace) -> int:
    rows = experiments.dollar_cost()
    print(render_table("§6.3.3: LBL-ORTOA operating cost", rows))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Capacity planner on the wire-validated cost model (or --check it)."""
    from repro.analysis.costmodel import (
        DEFAULT_COMPRESSIONS_PER_CORE_PER_SEC,
        DEFAULT_FLUSH_OVERHEAD_SECONDS,
        DEFAULT_SHARD_OPS_PER_SEC,
        DEFAULT_TARGET_UTILIZATION,
        LblCostModel,
        plan_capacity,
        run_model_check,
    )

    if args.check:
        # Replay GET and PUT through real deployments on every backend and
        # require the ledger to agree with the model byte-for-byte.
        report = run_model_check(
            value_sizes=(4, 8, 16),
            backends=(
                "scalar",
                "stdlib",
                "vector",
                "procpool",
                "coalesced",
                "server-coalesced",
            ),
        )
        for case in report["cases"]:
            mark = "ok " if case["ok"] else "FAIL"
            print(
                f"  [{mark}] value_len={case['value_len']:<3d} "
                f"backend={case['backend']:<9s} {case['op']}"
            )
        verdict = (
            "model == ledger for every case"
            if report["ok"]
            else "MODEL/LEDGER MISMATCH"
        )
        print(f"model check: {verdict} ({len(report['cases'])} cases)")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
            print(f"wrote {args.json}")
        return 0 if report["ok"] else 1

    try:
        model = LblCostModel(
            value_len=args.value_len,
            group_bits=args.group_bits,
            label_bits=args.label_bits,
            point_and_permute=not args.base,
            backend=args.backend,
        )
        plan = plan_capacity(
            args.users,
            args.ops_per_day,
            model,
            num_objects=args.objects,
            shard_ops_per_sec=args.shard_ops or DEFAULT_SHARD_OPS_PER_SEC,
            compressions_per_core_per_sec=args.core_compressions
            or DEFAULT_COMPRESSIONS_PER_CORE_PER_SEC,
            target_utilization=args.utilization or DEFAULT_TARGET_UTILIZATION,
            coalesce_batch=args.coalesce_batch,
            flush_overhead_seconds=(
                args.flush_overhead
                if args.flush_overhead is not None
                else DEFAULT_FLUSH_OVERHEAD_SECONDS
            ),
            server_batch=args.server_batch,
            server_opens_per_sec=args.server_opens,
            server_flush_overhead_seconds=args.server_flush_overhead,
        )
    except OrtoaError as exc:
        print(f"cannot plan: {exc}", file=sys.stderr)
        return 2

    plan_dict = plan.as_dict()
    rows = [
        {"quantity": name, "value": value}
        for name, value in plan_dict.items()
        if name != "assumptions"
    ]
    print(render_table("LBL-ORTOA capacity plan (ledger-validated model)", rows))
    print("assumptions:")
    for name, value in plan_dict["assumptions"].items():
        print(f"  {name:32s} {value}")
    if args.record:
        from repro.harness.bench import BenchRecorder

        recorder = BenchRecorder()
        for metric, value, unit in (
            ("plan.bytes_per_access", plan.bytes_per_access, "bytes"),
            ("plan.projected_p99_ms", plan.projected_p99_ms, "ms"),
            ("plan.dollars_per_day", plan.dollars_per_day, "$/day"),
        ):
            # Planner projections are model outputs, not measurements:
            # record the trajectory, never gate on them.
            recorder.record(
                metric, value, unit=unit, higher_is_better=False, gate=False
            )
        print(f"recorded planner projections to {recorder.path}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(plan_dict, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Run an instrumented LBL workload; print metrics and the audit verdict."""
    from repro.obs.audit import LeakyLblOrtoa, run_audit, run_sharded_audit
    from repro.core.lbl import LblOrtoa
    from repro.types import StoreConfig

    label_cache = None if args.no_label_cache else -1
    if args.base:
        config = StoreConfig(value_len=args.value_len, label_cache_entries=label_cache)
    else:
        config = StoreConfig(
            value_len=args.value_len,
            group_bits=2,
            point_and_permute=True,
            label_cache_entries=label_cache,
        )

    if args.shards:
        # Sharded + pipelined audit over an in-process loopback cluster
        # (thread-backed, so the shard servers' spans land in our tracer).
        if args.leaky:
            print(
                "--leaky audits the in-process negative control; "
                "it has no sharded deployment",
                file=sys.stderr,
            )
            return 2
        from repro.core.sharded import ShardedLblDeployment
        from repro.transport.cluster import ShardCluster

        obs.reset()
        try:
            with ShardCluster(
                args.shards,
                point_and_permute=config.point_and_permute,
                in_process=True,
                transport=args.transport,
                server_batch=args.server_batch,
            ) as cluster:
                deployment = ShardedLblDeployment(
                    config,
                    cluster.addresses,
                    rng=random.Random(args.seed),
                    pipeline_depth=args.pipeline_depth,
                    prepare_workers=args.workers,
                    transport=args.transport,
                )
                try:
                    report = run_sharded_audit(
                        deployment,
                        num_keys=args.keys,
                        seed=args.seed,
                        pipeline_depth=args.pipeline_depth,
                    )
                finally:
                    deployment.close()
        except OrtoaError as exc:
            print(f"audit failed to run: {exc}", file=sys.stderr)
            return 2
        cache = deployment.proxy.label_cache
        if cache is not None:
            obs.REGISTRY.gauge("lbl.proxy.label_cache.hit_rate").set(
                round(cache.hit_rate, 3)
            )
        snapshot = obs.REGISTRY.snapshot()
        print(
            f"protocol: {deployment.name}  (value_len={config.value_len}, "
            f"y={config.group_bits}, "
            f"point_and_permute={config.point_and_permute}, "
            f"pipeline_depth={args.pipeline_depth})"
        )
        print("metrics:")
        for name, value in sorted(snapshot["counters"].items()):
            print(f"  {name:38s} {value}")
        for name, gauge in sorted(snapshot["gauges"].items()):
            print(f"  {name:38s} {gauge['value']} (max {gauge['max']})")
        print(f"span errors: {snapshot['counters'].get('trace.span_errors', 0)}")
        print(report.summary())
        if args.json:
            bundle = {
                "protocol": deployment.name,
                "metrics": snapshot,
                "audit": report.to_dict(),
                "spans": obs.TRACER.export(),
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, indent=2, default=str)
            print(f"wrote {args.json}")
        return 0 if report.passed else 1

    protocol_cls = LeakyLblOrtoa if args.leaky else LblOrtoa
    protocol = protocol_cls(config, rng=random.Random(args.seed))

    obs.reset()
    try:
        report = run_audit(protocol, num_keys=args.keys, seed=args.seed)
    except OrtoaError as exc:
        print(f"audit failed to run: {exc}", file=sys.stderr)
        return 2
    cache = protocol.proxy.label_cache
    if cache is not None and not args.leaky:
        # The audit touches each key exactly once (all cache misses by
        # design); a follow-up read pass exercises the warm path so the
        # reported hit rate reflects steady-state behaviour.  The leaky
        # control is skipped: its server deliberately desynchronizes on
        # reads, so any second access fails by construction.
        from repro.types import Request

        obs.enable()
        for i in range(args.keys):
            protocol.access(Request.read(f"audit-{i}"))
        obs.REGISTRY.gauge("lbl.proxy.label_cache.hit_rate").set(
            round(cache.hit_rate, 3)
        )
    snapshot = obs.REGISTRY.snapshot()

    print(f"protocol: {protocol.name}  (value_len={config.value_len}, "
          f"y={config.group_bits}, point_and_permute={config.point_and_permute})")
    print("metrics:")
    for name, value in sorted(snapshot["counters"].items()):
        print(f"  {name:38s} {value}")
    for name, gauge in sorted(snapshot["gauges"].items()):
        print(f"  {name:38s} {gauge['value']} (max {gauge['max']})")
    print(f"span errors: {snapshot['counters'].get('trace.span_errors', 0)}")
    print(report.summary())

    if args.json:
        bundle = {
            "protocol": protocol.name,
            "metrics": snapshot,
            "audit": report.to_dict(),
            "spans": obs.TRACER.export(),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a traced sharded workload; merge spans and export Chrome JSON."""
    from repro.core.sharded import ShardedLblDeployment
    from repro.obs.export import write_chrome_trace
    from repro.obs.propagate import orphan_spans, trace_roots
    from repro.transport.cluster import ShardCluster
    from repro.types import Request, StoreConfig

    config = StoreConfig(value_len=args.value_len, group_bits=2, point_and_permute=True)
    rng = random.Random(args.seed)
    obs.reset()
    obs.enable()
    try:
        with ShardCluster(
            args.shards,
            point_and_permute=True,
            in_process=not args.processes,
            enable_obs=args.processes,
            transport=args.transport,
        ) as cluster:
            deployment = ShardedLblDeployment(
                config,
                cluster.addresses,
                rng=random.Random(args.seed),
                pipeline_depth=args.pipeline_depth,
                transport=args.transport,
            )
            try:
                deployment.initialize(
                    {f"trace-{i}": f"v{i}".encode() for i in range(args.keys)}
                )
                requests = []
                for i in range(args.keys):
                    key = f"trace-{rng.randrange(args.keys)}"
                    if rng.random() < 0.5:
                        requests.append(Request.read(key))
                    else:
                        requests.append(Request.write(key, config.pad(b"w%d" % i)))
                deployment.access_pipelined(requests)
                remote = deployment.collect_remote_obs() if args.processes else None
                spans = deployment.merged_spans(remote)
            finally:
                deployment.close()
    except OrtoaError as exc:
        print(f"traced run failed: {exc}", file=sys.stderr)
        return 2
    finally:
        obs.disable()
    roots = trace_roots(spans)
    orphans = orphan_spans(spans)
    backing = f"{args.shards} process-backed" if args.processes else f"{args.shards} in-process"
    print(
        f"merged {len(spans)} spans from {backing} shard(s): "
        f"{len(roots)} root(s), {len(orphans)} orphan(s)"
    )
    if orphans:
        print("orphaned spans (parent missing after merge):", file=sys.stderr)
        for span in orphans[:10]:
            print(f"  {span['name']} (id {span['span_id']})", file=sys.stderr)
    if args.chrome:
        events = write_chrome_trace(args.chrome, spans)
        print(f"wrote {events} trace events to {args.chrome} (load in Perfetto)")
    if args.exemplars:
        from repro.obs.exemplars import EXEMPLARS, render_exemplar

        bundle = EXEMPLARS.export(spans)
        records = sorted(
            bundle["exemplars"], key=lambda r: -r["duration_s"]
        )
        print(
            f"retained {len(records)} tail exemplar(s) "
            f"(threshold {bundle['threshold_s'] * 1e3:.0f} ms, "
            f"top-{bundle['top_k']} per {bundle['window_s']:.1f}s window):"
        )
        for record in records[: args.exemplars]:
            print(render_exemplar(record))
    return 1 if orphans else 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal telemetry scraped from --metrics-port endpoints."""
    from repro.obs.top import run_top

    try:
        run_top(
            args.targets,
            interval_s=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear and not args.json,
            json_mode=args.json,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Scrape a deployment twice and print the bottleneck diagnosis."""
    from repro.obs.doctor import run_doctor

    return run_doctor(
        args.targets,
        interval_s=args.interval,
        predicted_ops_per_shard=args.predicted_ops,
        json_mode=args.json,
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    """Sampling profiler: attach locally or to a remote shard over 0x62/0x63."""
    import time as _time

    perfetto_payload = None
    if args.target:
        # Remote: start/stop the shard's profiler over the obs control
        # frames; the shard samples itself while we sleep.
        import socket
        import struct

        from repro.transport.framing import recv_frame, send_frame
        from repro.transport.server import (
            OBS_PROFILE_DUMP_TAG,
            OBS_PROFILE_START_TAG,
            OBS_PROFILE_STOP_TAG,
        )

        host, _, port = args.target.rpartition(":")
        address = (host or "localhost", int(port))
        start = bytes([OBS_PROFILE_START_TAG]) + struct.pack(
            ">I", max(1, int(args.interval * 1e6))
        )
        with socket.create_connection(address, timeout=10.0) as sock:
            send_frame(sock, start)
            recv_frame(sock)
            _time.sleep(args.seconds)
            send_frame(sock, bytes([OBS_PROFILE_STOP_TAG]))
            reply = recv_frame(sock)
        if reply[:1] != bytes([OBS_PROFILE_DUMP_TAG]):
            print("target answered with a non-profile frame", file=sys.stderr)
            return 2
        body = json.loads(reply[1:].decode("utf-8"))
        profile = body.get("profile")
        if profile is None:
            print("target returned no profile (was one already running?)",
                  file=sys.stderr)
            return 2
    else:
        # Local: profile this process over a self-workload so CI can smoke
        # the profiler without a running deployment.
        from repro import LblOrtoa, Request, StoreConfig
        from repro.obs import profiler as _profiler

        prof = _profiler.attach(interval_s=args.interval)
        deadline = _time.monotonic() + args.seconds
        config = StoreConfig(value_len=16, group_bits=2, point_and_permute=True)
        store = LblOrtoa(config, rng=random.Random(0))
        store.initialize({f"prof-{i}": b"x" for i in range(16)})
        i = 0
        while _time.monotonic() < deadline:
            store.access(Request.read(f"prof-{i % 16}"))
            i += 1
        prof.stop()
        if args.perfetto:
            perfetto_payload = prof.perfetto()
        profile = _profiler.detach()
        if profile is None:
            print("profiler was not attached", file=sys.stderr)
            return 2

    print(
        f"profile: {profile['samples']} samples over "
        f"{profile['elapsed_s']:.2f}s at {profile['interval_s'] * 1e3:.1f} ms"
    )
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(profile["collapsed"] + "\n")
        print(f"wrote collapsed stacks to {args.collapsed} (flamegraph.pl input)")
    if args.perfetto:
        if perfetto_payload is None:
            # Remote dumps carry collapsed text only; rebuilding trace
            # events from it would be lossy, so just report.
            print("no perfetto payload in this profile", file=sys.stderr)
        else:
            with open(args.perfetto, "w", encoding="utf-8") as handle:
                json.dump(perfetto_payload, handle, indent=2)
            print(f"wrote {args.perfetto} (open at https://ui.perfetto.dev)")
    if not args.collapsed and not args.perfetto:
        for line in profile["collapsed"].splitlines()[:20]:
            print(f"  {line}")
    return 0 if profile["samples"] else 1


def _cmd_bench_check(args: argparse.Namespace) -> int:
    """Gate the latest benchmark run against the best recorded runs."""
    from repro.harness.bench import check_history

    try:
        results = check_history(args.history, threshold=args.threshold)
    except OrtoaError as exc:
        print(f"cannot check {args.history}: {exc}", file=sys.stderr)
        return 2
    if not results:
        print("no benchmark history recorded yet (nothing to gate)")
        return 0
    regressed = False
    for result in results:
        print(result.message)
        regressed = regressed or result.regressed
    if regressed and args.warn_only:
        print("regressions found, but --warn-only set", file=sys.stderr)
        return 0
    return 1 if regressed else 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Run every experiment and write one table file per artifact."""
    import pathlib

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    failures = []
    for name, (fn, description) in EXPERIMENTS.items():
        print(f"running {name} ...", flush=True)
        try:
            rows = fn()
        except Exception as exc:  # noqa: BLE001 - keep reproducing the rest
            failures.append((name, str(exc)))
            print(f"  FAILED: {exc}", file=sys.stderr)
            continue
        path = out_dir / f"{name}.txt"
        path.write_text(render_table(description, rows) + "\n", encoding="utf-8")
        print(f"  wrote {path}")
    if failures:
        print(f"{len(failures)} experiment(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(EXPERIMENTS)} experiments written to {out_dir}/")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ORTOA (EDBT 2024) reproduction toolkit",
    )
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        default="warning",
        help="verbosity of the repro.* logger hierarchy (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible tables/figures").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="experiment name (see `repro list`)")
    run.add_argument("--out", help="write the table to this file instead of stdout")
    run.add_argument(
        "--format",
        choices=("table", "csv"),
        default="table",
        help="output format (default: aligned text table)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the experiment rows as JSON (overrides --format)",
    )
    run.add_argument(
        "--obs-json",
        metavar="PATH",
        help="capture spans + metrics during the run and write them to PATH",
    )
    run.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="shard count for experiments that take one (e.g. `sharded`)",
    )
    run.add_argument(
        "--pipeline-depth",
        type=int,
        metavar="D",
        help="in-flight window for experiments that take one (e.g. `pipeline`)",
    )
    run.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="prepare-pool threads for experiments that take one (e.g. `lbl`)",
    )
    run.add_argument(
        "--label-cache",
        type=int,
        metavar="M",
        help="label-cache entries for experiments that take one "
        "(-1 auto-sizes; e.g. `lbl`)",
    )
    run.add_argument(
        "--crypto-backend",
        choices=("scalar", "stdlib", "auto", "vector", "procpool"),
        help="proxy crypto backend for experiments that take one "
        "(e.g. `lbl`): scalar reference path, stdlib batched kernels, "
        "numpy lane engine, or a label-derivation process pool",
    )
    run.add_argument(
        "--transport",
        choices=("thread", "async"),
        help="shard transport for experiments that take one "
        "(e.g. `sharded`, `pipeline`): threaded servers/clients or the "
        "asyncio event-loop transport",
    )
    run.add_argument(
        "--coalesce-window",
        dest="coalesce_window",
        type=float,
        metavar="SECONDS",
        help="prepare-coalescing flush timer for experiments that take one "
        "(e.g. `lbl`): concurrent prepares fuse into windowed lane "
        "dispatches; 0 disables",
    )
    run.add_argument(
        "--server-batch",
        dest="server_batch",
        type=int,
        metavar="N",
        help="server-side access window size for experiments that take one "
        "(e.g. `sharded`): concurrent accesses fuse into one storage "
        "multi-get + window-wide AEAD open + multi-put; 1 disables",
    )
    run.add_argument(
        "--server-window",
        dest="server_window",
        type=float,
        metavar="SECONDS",
        help="server-side access window flush timer for experiments that "
        "take one (e.g. `sharded`); default ~200µs",
    )
    run.set_defaults(func=_cmd_run)

    sub.add_parser("demo", help="30-second functional demo").set_defaults(
        func=_cmd_demo
    )
    sub.add_parser("cost", help="§6.3.3 dollar-cost estimate").set_defaults(
        func=_cmd_cost
    )

    plan = sub.add_parser(
        "plan",
        help="size a deployment (shards, cores, p99, $/day) from the "
        "ledger-validated cost model; --check asserts model == ledger "
        "(exit 1 on mismatch)",
    )
    plan.add_argument(
        "--users", type=int, default=1_000_000, help="active users (default: 1M)"
    )
    plan.add_argument(
        "--ops-per-day",
        dest="ops_per_day",
        type=float,
        default=10.0,
        help="accesses per user per day (default: 10)",
    )
    plan.add_argument(
        "--objects",
        type=int,
        default=None,
        metavar="N",
        help="stored objects (default: one per user)",
    )
    plan.add_argument(
        "--value-len", type=int, default=160, help="value bytes (default: 160)"
    )
    plan.add_argument(
        "--group-bits", type=int, default=2, help="y grouping factor (default: 2)"
    )
    plan.add_argument(
        "--label-bits", type=int, default=128, help="label width (default: 128)"
    )
    plan.add_argument(
        "--base",
        action="store_true",
        help="plan the §5.2 base protocol instead of §10.2 point-and-permute",
    )
    plan.add_argument(
        "--backend",
        choices=("scalar", "stdlib", "vector", "procpool"),
        default="stdlib",
        help="proxy crypto backend to model (default: stdlib)",
    )
    plan.add_argument(
        "--shard-ops",
        dest="shard_ops",
        type=float,
        default=None,
        metavar="RATE",
        help="sustained accesses/s one shard serves (planner assumption)",
    )
    plan.add_argument(
        "--core-compressions",
        dest="core_compressions",
        type=float,
        default=None,
        metavar="RATE",
        help="sustained SHA-256 compressions/s per core (planner assumption)",
    )
    plan.add_argument(
        "--utilization",
        type=float,
        default=None,
        help="planned peak utilization of shards and cores (default: 0.6)",
    )
    plan.add_argument(
        "--coalesce-batch",
        dest="coalesce_batch",
        type=int,
        default=1,
        metavar="N",
        help="expected requests per prepare-coalescing flush; the fixed "
        "dispatch overhead amortizes across the window (default: 1 = "
        "per-request prepares)",
    )
    plan.add_argument(
        "--flush-overhead",
        dest="flush_overhead",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fixed dispatch cost of one prepare flush (planner assumption)",
    )
    plan.add_argument(
        "--server-batch",
        dest="server_batch",
        type=int,
        default=1,
        metavar="N",
        help="expected requests per server-side access window; server CPU "
        "amortizes the flush overhead across the window (default: 1 = "
        "per-request server dispatch)",
    )
    plan.add_argument(
        "--server-opens",
        dest="server_opens",
        type=float,
        default=None,
        metavar="RATE",
        help="sustained designated-pair AEAD opens/s per server core "
        "(planner assumption)",
    )
    plan.add_argument(
        "--server-flush-overhead",
        dest="server_flush_overhead",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fixed cost of one server window flush (planner assumption)",
    )
    plan.add_argument(
        "--record",
        action="store_true",
        help="append planner projections to the BENCH trajectory (ungated)",
    )
    plan.add_argument(
        "--check",
        action="store_true",
        help="validate the model against the wire ledger for GET and PUT "
        "across scalar/stdlib/vector/procpool/coalesced/server-coalesced "
        "at 3 value sizes",
    )
    plan.add_argument("--json", metavar="PATH", help="write a JSON report")
    plan.set_defaults(func=_cmd_plan)

    obs_cmd = sub.add_parser(
        "obs",
        help="run an instrumented LBL workload; print metrics and the "
        "obliviousness-audit verdict (exit 1 on a detected leak)",
    )
    obs_cmd.add_argument("--keys", type=int, default=32, help="workload size")
    obs_cmd.add_argument("--value-len", type=int, default=16, help="value bytes")
    obs_cmd.add_argument("--seed", type=int, default=0, help="workload seed")
    obs_cmd.add_argument(
        "--base",
        action="store_true",
        help="audit the plain §5.2 protocol (shuffled tables) instead of "
        "the §10-optimized configuration",
    )
    obs_cmd.add_argument(
        "--leaky",
        action="store_true",
        help="audit the deliberately leaky negative control (must FAIL)",
    )
    obs_cmd.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="audit a sharded+pipelined deployment over N in-process "
        "loopback servers (per-shard verdicts)",
    )
    obs_cmd.add_argument(
        "--pipeline-depth",
        type=int,
        default=8,
        metavar="D",
        help="in-flight window for the sharded audit (default: 8)",
    )
    obs_cmd.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="prepare-pool threads for the sharded audit (default: 0, serial)",
    )
    obs_cmd.add_argument(
        "--no-label-cache",
        action="store_true",
        help="audit without the proxy label cache (enabled by default)",
    )
    obs_cmd.add_argument(
        "--transport",
        choices=("thread", "async"),
        default="thread",
        help="shard transport for the sharded audit (default: thread)",
    )
    obs_cmd.add_argument(
        "--server-batch",
        dest="server_batch",
        type=int,
        default=1,
        metavar="N",
        help="server-side access window size for the sharded audit "
        "(default: 1 = per-request dispatch; > 1 audits with window "
        "fusion on)",
    )
    obs_cmd.add_argument("--json", metavar="PATH", help="also write a JSON bundle")
    obs_cmd.set_defaults(func=_cmd_obs)

    trace = sub.add_parser(
        "trace",
        help="run a traced sharded workload, merge per-process spans into "
        "one trace, and optionally export Chrome/Perfetto JSON "
        "(exit 1 if any span is orphaned after the merge)",
    )
    trace.add_argument("--shards", type=int, default=2, help="shard count (default: 2)")
    trace.add_argument("--keys", type=int, default=32, help="workload size")
    trace.add_argument("--value-len", type=int, default=16, help="value bytes")
    trace.add_argument("--seed", type=int, default=0, help="workload seed")
    trace.add_argument(
        "--pipeline-depth", type=int, default=8, metavar="D", help="in-flight window"
    )
    trace.add_argument(
        "--transport",
        choices=("thread", "async"),
        default="thread",
        help="shard transport (default: thread)",
    )
    trace.add_argument(
        "--processes",
        action="store_true",
        help="process-backed shards: each runs its own tracer, dumps are "
        "pulled over the wire and merged (default: in-process threads)",
    )
    trace.add_argument(
        "--chrome",
        metavar="PATH",
        help="write the merged trace as Chrome trace-event JSON "
        "(open at https://ui.perfetto.dev)",
    )
    trace.add_argument(
        "--exemplars",
        type=int,
        nargs="?",
        const=3,
        default=0,
        metavar="N",
        help="render the span trees of the N slowest retained tail "
        "exemplars (default N: 3)",
    )
    trace.set_defaults(func=_cmd_trace)

    top = sub.add_parser(
        "top",
        help="live terminal view of one or more --metrics-port endpoints "
        "(ops/s, latency percentiles, cache hit rate, queue depth)",
    )
    top.add_argument(
        "targets",
        nargs="+",
        metavar="HOST:PORT",
        help="metrics endpoints to scrape (bare host:port or full URL)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="refresh seconds (default: 1)"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N refreshes (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (for logs/tests)",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per refresh instead of the ANSI table",
    )
    top.set_defaults(func=_cmd_top)

    doctor = sub.add_parser(
        "doctor",
        help="scrape every shard twice, attribute overload to its "
        "bottleneck (dispatch / crypto / wire / shedding), and compare "
        "throughput to the cost model's predicted capacity "
        "(exit 1 unless healthy)",
    )
    doctor.add_argument(
        "targets",
        nargs="+",
        metavar="HOST:PORT",
        help="metrics endpoints to scrape (bare host:port or full URL)",
    )
    doctor.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between the two rate-forming scrapes (default: 1)",
    )
    doctor.add_argument(
        "--predicted-ops",
        dest="predicted_ops",
        type=float,
        default=None,
        metavar="RATE",
        help="override the cost model's predicted sustained ops/s per shard "
        "(default: shard rate x target utilization from repro plan)",
    )
    doctor.add_argument(
        "--json",
        action="store_true",
        help="emit the full diagnosis as JSON instead of the report",
    )
    doctor.set_defaults(func=_cmd_doctor)

    profile = sub.add_parser(
        "profile",
        help="sampling profiler (~100 Hz): profile a self-workload in this "
        "process, or attach to a live shard with --target over the obs "
        "control frames",
    )
    profile.add_argument(
        "--seconds", type=float, default=2.0, help="sampling window (default: 2)"
    )
    profile.add_argument(
        "--interval",
        type=float,
        default=0.01,
        help="seconds between samples (default: 0.01 = 100 Hz)",
    )
    profile.add_argument(
        "--target",
        metavar="HOST:PORT",
        help="profile a running shard's data port instead of this process",
    )
    profile.add_argument(
        "--collapsed",
        metavar="PATH",
        help="write collapsed stacks (flamegraph.pl / speedscope input)",
    )
    profile.add_argument(
        "--perfetto",
        metavar="PATH",
        help="write Chrome trace-event JSON (local profiles only)",
    )
    profile.set_defaults(func=_cmd_profile)

    bench = sub.add_parser(
        "bench", help="benchmark trajectory tools (see `repro bench check`)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="fail if the latest run's gated metrics regressed >20%% vs the "
        "best recorded run (warns when there is no history yet)",
    )
    bench_check.add_argument(
        "--history",
        default=str(DEFAULT_HISTORY),
        help="trajectory file (default: BENCH_history.json at the repo root)",
    )
    bench_check.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression vs best (default: 0.2)",
    )
    bench_check.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (bootstrap mode)",
    )
    bench_check.set_defaults(func=_cmd_bench_check)

    reproduce = sub.add_parser(
        "reproduce", help="run every experiment, one table file per artifact"
    )
    reproduce.add_argument(
        "--out", default="results-cli", help="output directory (default: results-cli/)"
    )
    reproduce.set_defaults(func=_cmd_reproduce)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    obs.setup_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
