"""Exception hierarchy for the ORTOA reproduction.

Every error raised by this library derives from :class:`OrtoaError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish protocol, cryptographic, storage, and simulation faults.
"""

from __future__ import annotations


class OrtoaError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(OrtoaError):
    """A component was constructed or invoked with invalid parameters."""


class CryptoError(OrtoaError):
    """Base class for cryptographic failures."""


class DecryptionError(CryptoError):
    """Authenticated decryption failed (wrong key or tampered ciphertext).

    In LBL-ORTOA the server *expects* one of the two ciphertexts per index to
    fail decryption; this exception is the signal it relies on.
    """


class NoiseBudgetExhausted(CryptoError):
    """An FHE ciphertext accumulated too much noise to decrypt correctly.

    Reproduces the failure mode of paper §3.3: after a small number of
    homomorphic multiplications the plaintext can no longer be recovered.
    """


class TamperDetectedError(CryptoError):
    """A label read back from the server matches neither the 0- nor 1-label.

    Raised by the malicious-adversary extension of LBL-ORTOA (paper §5.4).
    """


class CryptoPoolError(CryptoError):
    """A crypto worker pool failed to produce a result.

    Raised by :class:`~repro.core.lbl.procpool.ProcessCryptoPool` when a
    worker process dies mid-derivation, returns a malformed result, or an
    in-flight task cannot be retrieved within its timeout — instead of the
    bare :mod:`multiprocessing` traceback those conditions produce natively.
    The derivation is deterministic and side-effect free, so retrying on a
    fresh pool is always safe.
    """


class ProtocolError(OrtoaError):
    """A protocol invariant was violated (malformed message, bad state)."""


class KeyNotFoundError(ProtocolError):
    """The requested key does not exist in the store."""


class OverloadError(ProtocolError):
    """The server shed this request instead of queueing it.

    Raised when a transport receives the one-byte OVERLOAD frame: the
    server's admission control found its in-flight window full (or the
    server draining for shutdown) and refused the request *before* looking
    at it.  The request was not processed — no label rotated, no counter
    moved — so retrying after backoff is always safe.
    """


class BatchPartialFailure(ProtocolError):
    """Some requests of a batch failed server-side; the rest completed.

    The successful requests *did* rotate their labels (server- and
    proxy-side state stays in sync for them), and the proxy rolled its
    counters back for the failed keys, so retrying just the failed requests
    is safe.

    Attributes:
        transcripts: ``original index -> AccessTranscript`` for the
            requests that completed.
        failures: ``original index -> server error message`` for the
            requests that did not.
    """

    def __init__(self, failures: dict, transcripts: dict) -> None:
        self.failures = dict(failures)
        self.transcripts = dict(transcripts)
        total = len(self.failures) + len(self.transcripts)
        indices = ", ".join(str(i) for i in sorted(self.failures))
        super().__init__(
            f"{len(self.failures)} of {total} batch requests failed "
            f"(indices {indices}); successful requests were applied"
        )


class StorageError(OrtoaError):
    """The storage engine rejected an operation."""


class EnclaveError(OrtoaError):
    """Base class for simulated-TEE failures."""


class AttestationError(EnclaveError):
    """Enclave attestation evidence failed verification."""


class EnclaveSealedError(EnclaveError):
    """Host code attempted to read enclave-private state."""


class SimulationError(OrtoaError):
    """The discrete-event simulator entered an invalid state."""
