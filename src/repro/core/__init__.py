"""The ORTOA protocol family (the paper's primary contribution).

Four interchangeable protocols implement the same single-key GET/PUT API
while hiding (or, for the baseline, emulating the state-of-the-art way of
hiding) the operation type from the storage server:

* :class:`~repro.core.baseline.TwoRoundBaseline` — read-then-write, 2 RTT
  (the comparison point of §6).
* :class:`~repro.core.fhe_ortoa.FheOrtoa` — homomorphic select, 1 RTT (§3).
* :class:`~repro.core.tee_ortoa.TeeOrtoa` — enclave select, 1 RTT (§4).
* :class:`~repro.core.lbl.LblOrtoa` — label-based select, 1 RTT (§5, §10).

All four return an :class:`~repro.core.base.AccessTranscript` from
``access()`` so the experiment harness can replay the communication and
computation profile of each request on the simulated WAN.
"""

from repro.core.base import AccessTranscript, OpCounts, OrtoaProtocol, PhaseRecord
from repro.core.baseline import TwoRoundBaseline
from repro.core.fhe_ortoa import FheOrtoa
from repro.core.lbl import LblOrtoa
from repro.core.tee_ortoa import TeeOrtoa

__all__ = [
    "OrtoaProtocol",
    "AccessTranscript",
    "PhaseRecord",
    "OpCounts",
    "TwoRoundBaseline",
    "FheOrtoa",
    "TeeOrtoa",
    "LblOrtoa",
]
