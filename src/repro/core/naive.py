"""The two broken one-round strawmen of paper §1.1, implemented honestly.

The paper motivates ORTOA by showing why the obvious one-round designs
fail.  Implementing them (clearly marked DO-NOT-USE) turns that argument
into executable regression tests:

* :class:`LeakyOneRound` — writes push ciphertexts, reads just fetch.  One
  round, perfectly functional, and the server sees the operation type in
  plain sight (reads never change stored state; message shapes differ).
* :class:`LossyReadModifyWrite` — every request is a server-side
  read-modify-write: the server stores whatever the client sent (a real
  value for writes, a *dummy* for reads) and returns the previous value.
  One round, type-hiding — and it destroys data on the first read, exactly
  as §1.1 warns ("any subsequent reads after the first read operation will
  fetch a dummy value, permanently losing an application's data!").

Both reuse the real wire formats and AEAD so the comparison with the
correct protocols is apples-to-apples.  ``tests/test_naive.py`` pins the
failure of each.
"""

from __future__ import annotations

import secrets

from repro.core import messages
from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.storage.kv import KeyValueStore
from repro.types import Request, Response, StoreConfig


class LeakyOneRound(OrtoaProtocol):
    """One round, zero privacy: the server learns every operation type.

    Reads send a :class:`~repro.core.messages.ReadRequest` and get the
    ciphertext back; writes send a :class:`~repro.core.messages.WriteRequest`.
    This is just an encrypted KV store — the §1.1 starting point ORTOA
    improves on.
    """

    name = "naive-leaky"
    rounds = 1

    def __init__(self, config: StoreConfig, keychain: KeyChain | None = None) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain()
        self.store: KeyValueStore[bytes] = KeyValueStore("naive-leaky-server")
        #: What the honest-but-curious server can write down per request:
        #: the message tag alone reveals the type.
        self.server_observations: list[str] = []

    def initialize(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            ct = aead.encrypt(self.keychain.data_key, self.config.pad(value))
            self.store.put_new(self.keychain.encode_key(key), ct)

    def access(self, request: Request) -> AccessTranscript:
        encoded_key = self.keychain.encode_key(request.key)
        if request.op.is_read:
            req = messages.ReadRequest(encoded_key)
            self.server_observations.append("READ")  # the leak
            ct = self.store.get(encoded_key)
            resp = messages.ReadResponse(ct)
            value = aead.decrypt(self.keychain.data_key, ct)
            round_trip = RoundTrip(len(req.to_bytes()), len(resp.to_bytes()))
        else:
            value = self._padded(request)
            assert value is not None
            ct = aead.encrypt(self.keychain.data_key, value)
            req = messages.WriteRequest(encoded_key, ct)
            self.server_observations.append("WRITE")  # the leak
            self.store.put(encoded_key, ct)
            resp = messages.WriteAck()
            round_trip = RoundTrip(len(req.to_bytes()), len(resp.to_bytes()))
        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy", "proxy", OpCounts(prf=1, aead_enc=1)),
                PhaseRecord("server", "server", OpCounts(kv_ops=1)),
            ),
            round_trips=(round_trip,),
            response=Response(request.key, value),
        )


class LossyReadModifyWrite(OrtoaProtocol):
    """One round, type-hiding — and it loses data (§1.1's second strawman).

    Every request ships an encrypted value (real for writes, random dummy
    for reads); the server unconditionally stores it and returns what was
    there before.  Reads and writes are indistinguishable... and the first
    read permanently replaces the object with garbage.
    """

    name = "naive-lossy-rmw"
    rounds = 1

    def __init__(self, config: StoreConfig, keychain: KeyChain | None = None) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain()
        self.store: KeyValueStore[bytes] = KeyValueStore("naive-rmw-server")

    def initialize(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            ct = aead.encrypt(self.keychain.data_key, self.config.pad(value))
            self.store.put_new(self.keychain.encode_key(key), ct)

    def access(self, request: Request) -> AccessTranscript:
        encoded_key = self.keychain.encode_key(request.key)
        outgoing = self._padded(request)
        if outgoing is None:
            outgoing = secrets.token_bytes(self.config.value_len)  # the bug
        new_ct = aead.encrypt(self.keychain.data_key, outgoing)
        req = messages.TeeAccessRequest(encoded_key, b"", new_ct)

        # Server: blind swap — indistinguishable, but destructive for reads.
        previous_ct = self.store.get(encoded_key)
        self.store.put(encoded_key, new_ct)
        resp = messages.TeeAccessResponse(previous_ct)

        value = aead.decrypt(self.keychain.data_key, resp.result_ct)
        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy", "proxy", OpCounts(prf=1, aead_enc=1)),
                PhaseRecord("server", "server", OpCounts(kv_ops=2)),
            ),
            round_trips=(RoundTrip(len(req.to_bytes()), len(resp.to_bytes())),),
            response=Response(request.key, value),
        )


__all__ = ["LeakyOneRound", "LossyReadModifyWrite"]
