"""Freshness (anti-rollback) protection for the AEAD-based protocols.

LBL-ORTOA gets tampering *and* rollback detection for free (§5.4): stale or
forged labels match no candidate at the current counter epoch.  The baseline
and TEE variants detect bit-level tampering through their authenticated
encryption, but a malicious server could still *replay* an older, validly
encrypted ciphertext — a rollback attack — undetected.

:class:`FreshnessGuard` closes that gap by composition over any protocol of
the family: it embeds a per-key version number inside the encrypted value
(so the server never sees it) and keeps the expected version at the trusted
proxy.  Reads re-encrypt the same version; writes install ``version + 1``;
any response whose embedded version disagrees with the proxy's expectation
raises :class:`~repro.errors.TamperDetectedError`.

Leakage note: versions travel only inside AEAD plaintext, so the wrapper
changes the server's view by exactly 8 ciphertext bytes per value —
identical for reads and writes, preserving operation-type obliviousness.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.base import AccessTranscript, OrtoaProtocol
from repro.errors import ConfigurationError, TamperDetectedError
from repro.types import Request, Response, StoreConfig

_VERSION_WIDTH = 8


class FreshnessGuard(OrtoaProtocol):
    """Wrap a protocol with per-key version verification.

    Args:
        config: The *public* configuration (the value length callers see).
        make_inner: Factory receiving the widened internal configuration
            (``value_len + 8``) and returning the protocol to wrap, e.g.
            ``lambda cfg: TeeOrtoa(cfg)``.
    """

    def __init__(self, config: StoreConfig, make_inner) -> None:
        super().__init__(config)
        inner_config = replace(config, value_len=config.value_len + _VERSION_WIDTH)
        self.inner: OrtoaProtocol = make_inner(inner_config)
        if self.inner.config.value_len != inner_config.value_len:
            raise ConfigurationError(
                "inner protocol must be built with the widened configuration"
            )
        self.name = f"fresh-{self.inner.name}"
        self.rounds = self.inner.rounds
        self._versions: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Version packing (inside the encrypted value)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _pack(version: int, payload: bytes) -> bytes:
        return version.to_bytes(_VERSION_WIDTH, "big") + payload

    @staticmethod
    def _unpack(data: bytes) -> tuple[int, bytes]:
        return int.from_bytes(data[:_VERSION_WIDTH], "big"), data[_VERSION_WIDTH:]

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #

    def initialize(self, records: dict[str, bytes]) -> None:
        packed = {}
        for key, value in records.items():
            self._versions[key] = 0
            packed[key] = self._pack(0, self.config.pad(value))
        self.inner.initialize(packed)

    def expected_version(self, key: str) -> int:
        """The version the next read of ``key`` must return."""
        try:
            return self._versions[key]
        except KeyError:
            raise ConfigurationError(f"key {key!r} was never initialized") from None

    def access(self, request: Request) -> AccessTranscript:
        expected = self.expected_version(request.key)
        if request.op.is_write:
            payload = self.config.pad(request.value)  # type: ignore[arg-type]
            inner_request = Request.write(
                request.key, self._pack(expected + 1, payload)
            )
        else:
            inner_request = Request.read(request.key)

        transcript = self.inner.access(inner_request)
        version, payload = self._unpack(transcript.response.value)

        if request.op.is_write:
            self._versions[request.key] = expected + 1
            expected = expected + 1
        if version != expected:
            raise TamperDetectedError(
                f"rollback detected for key {request.key!r}: server returned "
                f"version {version}, expected {expected}"
            )
        return AccessTranscript(
            op=request.op,
            phases=transcript.phases,
            round_trips=transcript.round_trips,
            response=Response(request.key, payload),
        )


__all__ = ["FreshnessGuard"]
