"""Shared protocol interface and access transcripts.

Every protocol implements :class:`OrtoaProtocol`.  ``access()`` executes one
client request end-to-end *functionally* (real crypto, real state updates)
and returns an :class:`AccessTranscript` describing what happened in each
phase — where work ran (proxy or server), how many cryptographic operations
it took, and how many bytes crossed the WAN per round trip.  The experiment
harness replays transcripts onto the discrete-event simulator; functional
tests just inspect ``transcript.response``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace

from repro.types import Operation, Request, Response, StoreConfig


@dataclass(frozen=True, slots=True)
class OpCounts:
    """Cryptographic operation counts for one phase of one access.

    The cost model (:mod:`repro.harness.calibration`) prices each counter to
    turn a phase into simulated compute time.
    """

    prf: int = 0
    aead_enc: int = 0
    aead_dec: int = 0
    failed_dec: int = 0
    fhe_enc: int = 0
    fhe_dec: int = 0
    fhe_add: int = 0
    fhe_mul: int = 0
    ecalls: int = 0
    kv_ops: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            prf=self.prf + other.prf,
            aead_enc=self.aead_enc + other.aead_enc,
            aead_dec=self.aead_dec + other.aead_dec,
            failed_dec=self.failed_dec + other.failed_dec,
            fhe_enc=self.fhe_enc + other.fhe_enc,
            fhe_dec=self.fhe_dec + other.fhe_dec,
            fhe_add=self.fhe_add + other.fhe_add,
            fhe_mul=self.fhe_mul + other.fhe_mul,
            ecalls=self.ecalls + other.ecalls,
            kv_ops=self.kv_ops + other.kv_ops,
        )


@dataclass(frozen=True, slots=True)
class PhaseRecord:
    """One compute phase of an access: who did how much work."""

    name: str
    location: str  # "proxy" or "server"
    ops: OpCounts

    def __post_init__(self) -> None:
        if self.location not in ("proxy", "server"):
            raise ValueError(f"unknown location {self.location!r}")


@dataclass(frozen=True, slots=True)
class RoundTrip:
    """One proxy→server→proxy exchange with byte-exact message sizes."""

    request_bytes: int
    response_bytes: int


@dataclass(frozen=True, slots=True)
class AccessTranscript:
    """The complete observable profile of one client access.

    Phase order alternates proxy/server work in protocol order; the i-th
    server phase is bracketed by the i-th round trip's request and response.
    """

    op: Operation
    phases: tuple[PhaseRecord, ...]
    round_trips: tuple[RoundTrip, ...]
    response: Response

    @property
    def num_rounds(self) -> int:
        """Proxy-server round trips this access used."""
        return len(self.round_trips)

    @property
    def request_bytes(self) -> int:
        """Total serialized request bytes across all rounds."""
        return sum(rt.request_bytes for rt in self.round_trips)

    @property
    def response_bytes(self) -> int:
        """Total serialized response bytes across all rounds."""
        return sum(rt.response_bytes for rt in self.round_trips)

    @property
    def total_bytes(self) -> int:
        """Request plus response bytes."""
        return self.request_bytes + self.response_bytes

    def ops_at(self, location: str) -> OpCounts:
        """Summed op counts over all phases at ``location``."""
        total = OpCounts()
        for phase in self.phases:
            if phase.location == location:
                total = total + phase.ops
        return total


class OrtoaProtocol(abc.ABC):
    """Abstract base for the protocol family.

    Subclasses own all the state of one logical deployment: the proxy state
    (if any), the (simulated) server-side store, and key material.

    Args:
        config: Fixed-value-length store configuration shared by all
            protocols in a comparison.
    """

    #: Human-readable protocol name used in reports.
    name: str = "abstract"
    #: Number of proxy↔server round trips per access.
    rounds: int = 1

    def __init__(self, config: StoreConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def initialize(self, records: dict[str, bytes]) -> None:
        """Bulk-load plaintext key/value pairs into the (encrypted) store.

        Values shorter than ``config.value_len`` are zero-padded; longer
        values are rejected.
        """

    @abc.abstractmethod
    def access(self, request: Request) -> AccessTranscript:
        """Execute one GET/PUT obliviously and return its transcript."""

    def read(self, key: str) -> bytes:
        """Convenience: oblivious GET returning the (padded) value."""
        return self.access(Request.read(key)).response.value

    def write(self, key: str, value: bytes) -> None:
        """Convenience: oblivious PUT."""
        self.access(Request.write(key, self.config.pad(value)))

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #

    def _padded(self, request: Request) -> bytes | None:
        """The padded write payload, or ``None`` for reads."""
        if request.op.is_read:
            return None
        return self.config.pad(request.value)  # type: ignore[arg-type]


__all__ = [
    "OrtoaProtocol",
    "AccessTranscript",
    "PhaseRecord",
    "RoundTrip",
    "OpCounts",
]
