"""Wire formats for proxy↔server messages, with byte-exact serialization.

Communication volume is a first-class quantity in the paper (LBL-ORTOA's
``2·E_len·t`` bits per access drives Figures 3b–3d), so every message here
serializes to real bytes and experiments measure ``len(to_bytes())`` rather
than trusting an analytic formula.  Framing is minimal and explicit: a
1-byte message tag followed by 4-byte big-endian length-prefixed fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError

_LEN_BYTES = 4


def _pack_fields(tag: int, fields: list[bytes]) -> bytes:
    out = [bytes([tag])]
    for field in fields:
        out.append(len(field).to_bytes(_LEN_BYTES, "big"))
        out.append(field)
    return b"".join(out)


def _unpack_exactly(data: bytes, expected_tag: int, count: int) -> list[bytes]:
    """Unpack and require an exact field count (clean error on mismatch)."""
    fields = _unpack_fields(data, expected_tag)
    if len(fields) != count:
        raise ProtocolError(
            f"message with tag {expected_tag} needs {count} fields, got {len(fields)}"
        )
    return fields


def _unpack_fields(data: bytes, expected_tag: int) -> list[bytes]:
    if not data or data[0] != expected_tag:
        raise ProtocolError(f"bad message tag: expected {expected_tag}, got {data[:1]!r}")
    fields = []
    pos = 1
    while pos < len(data):
        if pos + _LEN_BYTES > len(data):
            raise ProtocolError("truncated field length")
        length = int.from_bytes(data[pos:pos + _LEN_BYTES], "big")
        pos += _LEN_BYTES
        if pos + length > len(data):
            raise ProtocolError("truncated field body")
        fields.append(data[pos:pos + length])
        pos += length
    return fields


# --------------------------------------------------------------------- #
# Baseline (2RTT): a read round followed by a write round
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class ReadRequest:
    """Round 1 of the baseline: fetch the ciphertext for an encoded key."""

    encoded_key: bytes
    TAG = 0x01

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [self.encoded_key])

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadRequest":
        """Parse the wire form; raises ProtocolError when malformed."""
        (encoded_key,) = _unpack_exactly(data, cls.TAG, 1)
        return cls(encoded_key)


@dataclass(frozen=True, slots=True)
class ReadResponse:
    ciphertext: bytes
    TAG = 0x02

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [self.ciphertext])

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadResponse":
        """Parse the wire form; raises ProtocolError when malformed."""
        (ciphertext,) = _unpack_exactly(data, cls.TAG, 1)
        return cls(ciphertext)


@dataclass(frozen=True, slots=True)
class WriteRequest:
    """Round 2 of the baseline: store a (re-)encrypted value."""

    encoded_key: bytes
    ciphertext: bytes
    TAG = 0x03

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [self.encoded_key, self.ciphertext])

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteRequest":
        """Parse the wire form; raises ProtocolError when malformed."""
        encoded_key, ciphertext = _unpack_exactly(data, cls.TAG, 2)
        return cls(encoded_key, ciphertext)


@dataclass(frozen=True, slots=True)
class WriteAck:
    TAG = 0x04

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [])

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteAck":
        """Parse the wire form; raises ProtocolError when malformed."""
        _unpack_exactly(data, cls.TAG, 0)
        return cls()


# --------------------------------------------------------------------- #
# TEE-ORTOA (1 RTT)
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class TeeAccessRequest:
    """§4.1: encoded key + encrypted selector ``c_r`` + encrypted new value."""

    encoded_key: bytes
    selector_ct: bytes
    new_value_ct: bytes
    TAG = 0x10

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [self.encoded_key, self.selector_ct, self.new_value_ct])

    @classmethod
    def from_bytes(cls, data: bytes) -> "TeeAccessRequest":
        """Parse the wire form; raises ProtocolError when malformed."""
        encoded_key, selector_ct, new_value_ct = _unpack_exactly(data, cls.TAG, 3)
        return cls(encoded_key, selector_ct, new_value_ct)


@dataclass(frozen=True, slots=True)
class TeeAccessResponse:
    """The enclave's re-encrypted output (old value for reads, new for writes)."""

    result_ct: bytes
    TAG = 0x11

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [self.result_ct])

    @classmethod
    def from_bytes(cls, data: bytes) -> "TeeAccessResponse":
        """Parse the wire form; raises ProtocolError when malformed."""
        (result_ct,) = _unpack_exactly(data, cls.TAG, 1)
        return cls(result_ct)


# --------------------------------------------------------------------- #
# LBL-ORTOA (1 RTT)
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class LblAccessRequest:
    """§5.2 step 1.5: the encoded key plus, per label group, a table of
    ``2^y`` ciphertexts (shuffled, or slot-linked under point-and-permute).

    The flat field list is ``[encoded_key, n0_ct0, n0_ct1, ..., n1_ct0, ...]``
    — every group contributes exactly ``table_size`` ciphertexts of equal
    length, so the framing stays self-describing.
    """

    encoded_key: bytes
    tables: tuple[tuple[bytes, ...], ...]
    TAG = 0x20

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        if not self.tables:
            raise ProtocolError("LBL request needs at least one group table")
        table_size = len(self.tables[0])
        if any(len(t) != table_size for t in self.tables):
            raise ProtocolError("all group tables must have equal size")
        header = bytes([table_size])
        fields = [self.encoded_key] + [ct for table in self.tables for ct in table]
        return _pack_fields(self.TAG, [header] + fields)

    @classmethod
    def from_bytes(cls, data: bytes) -> "LblAccessRequest":
        """Parse the wire form; raises ProtocolError when malformed."""
        fields = _unpack_fields(data, cls.TAG)
        if len(fields) < 2:
            raise ProtocolError("LBL request missing fields")
        if len(fields[0]) != 1:
            raise ProtocolError("LBL request header must be a single byte")
        table_size = fields[0][0]
        encoded_key = fields[1]
        cts = fields[2:]
        if table_size == 0 or len(cts) % table_size != 0:
            raise ProtocolError("LBL request table shape is inconsistent")
        tables = tuple(
            tuple(cts[i:i + table_size]) for i in range(0, len(cts), table_size)
        )
        return cls(encoded_key, tables)


@dataclass(frozen=True, slots=True)
class LblAccessResponse:
    """§5.2 step 2.2: the one successfully decrypted label per group."""

    opened_labels: tuple[bytes, ...]
    TAG = 0x21

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, list(self.opened_labels))

    @classmethod
    def from_bytes(cls, data: bytes) -> "LblAccessResponse":
        """Parse the wire form; raises ProtocolError when malformed."""
        return cls(tuple(_unpack_fields(data, cls.TAG)))


@dataclass(frozen=True, slots=True)
class LblBatchRequest:
    """Several LBL accesses in one wire message (one physical round trip).

    Serialized as length-prefixed serialized :class:`LblAccessRequest`
    frames under a batch tag; order is preserved and meaningful (repeated
    keys apply epoch-by-epoch).
    """

    requests: tuple[LblAccessRequest, ...]
    TAG = 0x22

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        if not self.requests:
            raise ProtocolError("batch must contain at least one request")
        return _pack_fields(self.TAG, [r.to_bytes() for r in self.requests])

    @classmethod
    def from_bytes(cls, data: bytes) -> "LblBatchRequest":
        """Parse the wire form; raises ProtocolError when malformed."""
        fields = _unpack_fields(data, cls.TAG)
        if not fields:
            raise ProtocolError("empty batch")
        return cls(tuple(LblAccessRequest.from_bytes(f) for f in fields))


@dataclass(frozen=True, slots=True)
class LblErrorEntry:
    """One failed request inside a batch response.

    A request that cannot be served (unknown key, stale labels, malformed
    tables) must not abort the whole batch: the server has already rotated
    labels for the requests it processed earlier, so discarding their
    responses would desynchronize every key the batch touched.  Instead the
    server slots this entry at the failing position and keeps going.
    """

    message: str
    TAG = 0x24

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [self.message.encode("utf-8")])

    @classmethod
    def from_bytes(cls, data: bytes) -> "LblErrorEntry":
        """Parse the wire form; raises ProtocolError when malformed."""
        (message,) = _unpack_exactly(data, cls.TAG, 1)
        return cls(message.decode("utf-8", "replace"))


@dataclass(frozen=True, slots=True)
class LblBatchResponse:
    """Per-request responses for a batch, in request order.

    Each entry is either an :class:`LblAccessResponse` (success) or an
    :class:`LblErrorEntry` (that request failed; the rest of the batch was
    still applied).
    """

    responses: tuple["LblAccessResponse | LblErrorEntry", ...]
    TAG = 0x23

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [r.to_bytes() for r in self.responses])

    @classmethod
    def from_bytes(cls, data: bytes) -> "LblBatchResponse":
        """Parse the wire form; raises ProtocolError when malformed."""
        fields = _unpack_fields(data, cls.TAG)
        entries: list[LblAccessResponse | LblErrorEntry] = []
        for field in fields:
            if field[:1] == bytes([LblErrorEntry.TAG]):
                entries.append(LblErrorEntry.from_bytes(field))
            else:
                entries.append(LblAccessResponse.from_bytes(field))
        return cls(tuple(entries))

    @property
    def error_indices(self) -> tuple[int, ...]:
        """Positions of the requests that failed server-side."""
        return tuple(
            i for i, r in enumerate(self.responses) if isinstance(r, LblErrorEntry)
        )


# --------------------------------------------------------------------- #
# FHE-ORTOA (1 RTT)
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class FheAccessRequest:
    """§3.1: encoded key + FHE(c_r) + FHE(c_w) + FHE(v_new), serialized."""

    encoded_key: bytes
    c_r_ct: bytes
    c_w_ct: bytes
    new_value_ct: bytes
    TAG = 0x30

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(
            self.TAG, [self.encoded_key, self.c_r_ct, self.c_w_ct, self.new_value_ct]
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "FheAccessRequest":
        """Parse the wire form; raises ProtocolError when malformed."""
        encoded_key, c_r, c_w, new_value = _unpack_exactly(data, cls.TAG, 4)
        return cls(encoded_key, c_r, c_w, new_value)


@dataclass(frozen=True, slots=True)
class FheAccessResponse:
    result_ct: bytes
    TAG = 0x31

    def to_bytes(self) -> bytes:
        """Serialize to the tagged, length-prefixed wire form."""
        return _pack_fields(self.TAG, [self.result_ct])

    @classmethod
    def from_bytes(cls, data: bytes) -> "FheAccessResponse":
        """Parse the wire form; raises ProtocolError when malformed."""
        (result_ct,) = _unpack_exactly(data, cls.TAG, 1)
        return cls(result_ct)


__all__ = [
    "ReadRequest",
    "ReadResponse",
    "WriteRequest",
    "WriteAck",
    "TeeAccessRequest",
    "TeeAccessResponse",
    "LblAccessRequest",
    "LblAccessResponse",
    "LblBatchRequest",
    "LblBatchResponse",
    "LblErrorEntry",
    "FheAccessRequest",
    "FheAccessResponse",
]
