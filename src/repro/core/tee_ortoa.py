"""TEE-ORTOA: one-round access-type hiding via a trusted enclave (paper §4).

The client (via the proxy, which in this variant exists only to hold the
symmetric key) sends one message per access: the PRF-encoded key, an
encrypted selector ``c_r`` (1 for reads, 0 for writes), and an encrypted new
value (a random dummy for reads).  The untrusted server fetches the stored
ciphertext *outside* the enclave — that part of the code is non-sensitive —
then passes the three ciphertexts into the enclave, which decrypts, selects,
and re-encrypts.  The server stores the enclave output and forwards it back,
completing a read or a write in a single round trip without learning which.
"""

from __future__ import annotations

import secrets

from repro.core import messages
from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.errors import AttestationError
from repro.storage.kv import KeyValueStore
from repro.tee.attestation import AttestationService, HardwareRoot, measure_code
from repro.tee.enclave import ENCLAVE_CODE_IDENTITY, Enclave
from repro.types import Request, Response, StoreConfig


class TeeOrtoa(OrtoaProtocol):
    """One-round oblivious GET/PUT backed by a (simulated) SGX enclave.

    Construction performs the full deployment flow: spin up an enclave on
    the server's hardware, verify its attestation quote against the expected
    code measurement, and only then provision the data key into it.
    """

    name = "tee-ortoa"
    rounds = 1

    def __init__(self, config: StoreConfig, keychain: KeyChain | None = None) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain()
        self.store: KeyValueStore[bytes] = KeyValueStore("tee-server")
        hardware = HardwareRoot()
        self.enclave = Enclave(hardware)
        attestation = AttestationService(hardware, measure_code(ENCLAVE_CODE_IDENTITY))
        attestation.verify(self.enclave.generate_quote(report_data=b"tee-ortoa-setup"))
        self.enclave.provision_key(self.keychain.data_key)

    def initialize(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            ciphertext = aead.encrypt(self.keychain.data_key, self.config.pad(value))
            self.store.put_new(self.keychain.encode_key(key), ciphertext)

    def access(self, request: Request) -> AccessTranscript:
        # Proxy/client side: build the one-round request.  Reads carry a
        # random dummy of the right length so the message shape and size are
        # identical for both operation types.
        selector = bytes([1 if request.op.is_read else 0])
        outgoing_value = self._padded(request)
        if outgoing_value is None:
            outgoing_value = secrets.token_bytes(self.config.value_len)
        req = messages.TeeAccessRequest(
            encoded_key=self.keychain.encode_key(request.key),
            selector_ct=aead.encrypt(self.keychain.data_key, selector),
            new_value_ct=aead.encrypt(self.keychain.data_key, outgoing_value),
        )

        # Server side: untrusted host fetch, then the trusted ECALL.
        parsed = messages.TeeAccessRequest.from_bytes(req.to_bytes())
        v_old_ct = self.store.get(parsed.encoded_key)
        result_ct = self.enclave.ecall_select_and_reencrypt(
            parsed.selector_ct, v_old_ct, parsed.new_value_ct
        )
        self.store.put(parsed.encoded_key, result_ct)
        resp = messages.TeeAccessResponse(result_ct)

        # Proxy side: decrypt the result (the read value; ignored for writes,
        # where it simply echoes the written value).
        response_value = aead.decrypt(
            self.keychain.data_key, messages.TeeAccessResponse.from_bytes(resp.to_bytes()).result_ct
        )

        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord(
                    "proxy-prepare", "proxy", OpCounts(prf=1, aead_enc=2)
                ),
                PhaseRecord(
                    "server-enclave",
                    "server",
                    OpCounts(kv_ops=2, ecalls=1, aead_dec=3, aead_enc=1),
                ),
                PhaseRecord("proxy-finalize", "proxy", OpCounts(aead_dec=1)),
            ),
            round_trips=(RoundTrip(len(req.to_bytes()), len(resp.to_bytes())),),
            response=Response(request.key, response_value),
        )


__all__ = ["TeeOrtoa"]
