"""Process-pool label derivation for LBL-ORTOA.

Under a GIL the :class:`~repro.core.lbl.parallel.ParallelPrepareEngine`
thread pool cannot overlap the PRF kernels of independent accesses — the
``hashlib`` calls are too small to release the GIL for.  This module moves
the label derivation itself into **worker processes**: each worker is handed
the raw label/permute PRF keys once (at pool start, via the initializer) and
rebuilds an identical :class:`~repro.crypto.labels.LabelCodec`; per task it
derives both epochs' label sets for one access and ships them back as flat
byte blobs.

The blob wire format keeps serialization off the critical path.  A
``num_groups × 2^y`` label set pickles as thousands of small ``bytes``
objects; joined group-major into a single blob it is one allocation each
way, and the parent re-slices it with two ``zip`` tricks.  Offsets travel as
one ``bytes`` (each offset fits a byte for every supported ``y ≤ 8``).

Security note: worker processes hold the label and permute PRF keys — the
pool extends the proxy's trust boundary to its own child processes, nothing
further.  Payload values, AEAD work, and access counters never leave the
parent; workers see only ``(key, counter)`` pairs, which the untrusted
server sees anyway (the key in PRF-encoded form).

``fork`` is preferred where available (no re-import cost per worker);
``spawn`` is the fallback and works identically because all worker state is
rebuilt from the initializer arguments.
"""

from __future__ import annotations

import multiprocessing as mp

from repro.crypto.labels import LabelCodec
from repro.crypto.prf import Prf
from repro.errors import ConfigurationError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger

#: ``(old_labels, old_offsets, new_labels, new_offsets)`` in the nested-list
#: shape :meth:`~repro.core.lbl.proxy.LblProxy.prepare` accepts as
#: ``label_sets``.
LabelSets = "tuple[list[list[bytes]], list[int] | None, list[list[bytes]], list[int] | None]"

# Per-worker-process codec, built once by _init_worker.
_WORKER_CODEC: LabelCodec | None = None


def _init_worker(
    label_key: bytes,
    label_out: int,
    permute_key: bytes,
    permute_out: int,
    value_len: int,
    group_bits: int,
) -> None:
    """Rebuild the label codec inside a worker process.

    ``Prf`` objects carry live ``hashlib`` states and cannot be pickled, so
    the pool ships the raw key material instead and reconstructs equivalent
    PRFs here.  Runs once per worker, at pool start.
    """
    global _WORKER_CODEC
    _WORKER_CODEC = LabelCodec(
        Prf(label_key, out_bytes=label_out),
        Prf(permute_key, out_bytes=permute_out),
        value_len=value_len,
        group_bits=group_bits,
    )


def _derive_flat(
    task: "tuple[str, int, bool]",
) -> "tuple[bytes, bytes | None, bytes, bytes | None]":
    """Worker body: derive both epochs of one access as flat blobs."""
    key, counter, point_and_permute = task
    codec = _WORKER_CODEC
    if codec is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    old_blob = b"".join(
        [label for row in codec.labels_for_groups(key, counter) for label in row]
    )
    new_blob = b"".join(
        [label for row in codec.labels_for_groups(key, counter + 1) for label in row]
    )
    if point_and_permute:
        old_offsets = bytes(codec.permute_offsets(key, counter))
        new_offsets = bytes(codec.permute_offsets(key, counter + 1))
    else:
        old_offsets = new_offsets = None
    return old_blob, old_offsets, new_blob, new_offsets


class ProcessCryptoPool:
    """Shared pool of worker processes deriving LBL label sets.

    Args:
        keychain: Key material; the label and permute PRF keys are exported
            to the workers (see the module security note).
        value_len: Fixed plaintext length in bytes (``config.value_len``).
        group_bits: ``y`` (``config.group_bits``).
        point_and_permute: Whether tasks must also derive permute offsets.
        workers: Worker process count (>= 1).
        start_method: ``multiprocessing`` start method; default prefers
            ``fork`` when the platform offers it, else ``spawn``.
    """

    def __init__(
        self,
        keychain,
        *,
        value_len: int,
        group_bits: int,
        point_and_permute: bool,
        workers: int = 2,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("procpool needs at least 1 worker")
        if group_bits > 8:
            raise ConfigurationError(
                "procpool offset encoding supports group_bits <= 8"
            )
        label_prf = keychain.label_prf
        permute_prf = keychain.permute_prf
        self.workers = workers
        self.point_and_permute = point_and_permute
        self._label_len = label_prf.out_bytes
        self._table_size = 1 << group_bits
        self._num_groups = (value_len * 8 + group_bits - 1) // group_bits
        # Parent-side twin of the worker codec, used only for its analytic
        # ``derivation_cost``: the in-PRF ledger meters fire in the worker
        # processes, whose registries die with them, so the parent credits
        # the exact same counts here at submission time.
        self._codec = LabelCodec(
            label_prf, permute_prf, value_len=value_len, group_bits=group_bits
        )
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self.start_method = start_method
        self._pool = ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(
                label_prf.export_key(),
                label_prf.out_bytes,
                permute_prf.export_key(),
                permute_prf.out_bytes,
                value_len,
                group_bits,
            ),
        )

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #

    def _unflatten(
        self, flat: "tuple[bytes, bytes | None, bytes, bytes | None]"
    ) -> LabelSets:
        """Blob wire format back to the nested shape ``prepare`` consumes."""
        old_blob, old_offsets, new_blob, new_offsets = flat
        label_len = self._label_len
        table_size = self._table_size
        expected = self._num_groups * table_size * label_len
        if len(old_blob) != expected or len(new_blob) != expected:
            raise ConfigurationError("procpool worker returned malformed label blob")

        def rows(blob: bytes) -> "list[list[bytes]]":
            labels = iter(
                [blob[i : i + label_len] for i in range(0, len(blob), label_len)]
            )
            return [list(row) for row in zip(*([labels] * table_size))]

        return (
            rows(old_blob),
            list(old_offsets) if old_offsets is not None else None,
            rows(new_blob),
            list(new_offsets) if new_offsets is not None else None,
        )

    def derive(self, key: str, counter: int) -> LabelSets:
        """Both epochs' label sets for access ``(key, counter)``, blocking."""
        return self.derive_async(key, counter).get()

    def derive_async(self, key: str, counter: int) -> "_PendingLabels":
        """Submit a derivation; the returned handle's ``get()`` blocks."""
        if self._pool is None:
            raise ConfigurationError("procpool is closed")
        if _obs.enabled:
            pnp = self.point_and_permute
            old_calls, old_comp = self._codec.derivation_cost(
                key, counter, offsets=pnp
            )
            new_calls, new_comp = self._codec.derivation_cost(
                key, counter + 1, offsets=pnp
            )
            _ledger.add_prf(old_calls + new_calls, old_comp + new_comp)
        task = (key, counter, self.point_and_permute)
        return _PendingLabels(
            self._pool.apply_async(_derive_flat, (task,)), self._unflatten
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessCryptoPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _PendingLabels:
    """Handle for an in-flight derivation; ``get()`` re-slices the blobs."""

    __slots__ = ("_result", "_unflatten")

    def __init__(self, result, unflatten) -> None:
        self._result = result
        self._unflatten = unflatten

    def get(self, timeout: float | None = None) -> LabelSets:
        return self._unflatten(self._result.get(timeout))


__all__ = ["ProcessCryptoPool"]
