"""Process-pool label derivation for LBL-ORTOA.

Under a GIL the :class:`~repro.core.lbl.parallel.ParallelPrepareEngine`
thread pool cannot overlap the PRF kernels of independent accesses — the
``hashlib`` calls are too small to release the GIL for.  This module moves
the label derivation itself into **worker processes**: each worker is handed
the raw label/permute PRF keys once (at pool start, via the initializer) and
rebuilds an identical :class:`~repro.crypto.labels.LabelCodec`.

Two wire formats carry results back to the parent:

* **Shared-memory rings** (default where available): each worker owns one
  ``multiprocessing.shared_memory`` segment laid out as a small ring of
  result slots — persistent worker↔segment affinity, claimed once at
  initializer time.  A worker derives a whole batch of accesses in one fused
  PRF dispatch (:meth:`~repro.crypto.labels.LabelCodec.labels_for_epochs`),
  writes the label/offset matrices straight into a free slot, and returns
  only a tiny ``(segment, slot, lengths)`` descriptor through the pickle
  channel.  The parent slices label sets directly out of the mapped buffer —
  no serialization of the label matrices in either direction.  One status
  byte per slot hands ownership back and forth: the worker publishes a slot
  by setting it, the parent frees it after consuming.
* **Flat blobs** (fallback): the label set joined group-major into one
  ``bytes`` plus one offsets ``bytes``, shipped through the pool's normal
  pickle channel.  Used when shared memory is unavailable (``REPRO_NO_SHM``,
  platform failure, or a batch larger than the ring slots were sized for).
  Byte-identical label sets either way — only the transport differs.

Security note: worker processes hold the label and permute PRF keys — the
pool extends the proxy's trust boundary to its own child processes, nothing
further.  Payload values, AEAD work, and access counters never leave the
parent; workers see only ``(key, counter)`` pairs, which the untrusted
server sees anyway (the key in PRF-encoded form).  Shared-memory segments
carry labels only, and live under the same boundary.

``fork`` is preferred where available (no re-import cost per worker);
``spawn`` is the fallback and works identically because all worker state is
rebuilt from the initializer arguments.

Failures surface as :class:`~repro.errors.CryptoPoolError` — a dead worker,
a malformed result, or a timed-out retrieval never leaks a bare
:mod:`multiprocessing` traceback to callers.  :meth:`ProcessCryptoPool.close`
drains gracefully: in-flight derivations finish (``close`` + ``join``) and
``terminate`` is reserved for workers that outlive the drain timeout.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time

from repro.crypto.labels import LabelCodec
from repro.crypto.prf import Prf
from repro.errors import ConfigurationError, CryptoPoolError, OrtoaError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER

_log = get_logger("lbl.procpool")

#: Environment variable pinning the blob fallback (mirrors ``REPRO_NO_VECTOR``
#: for the lane engine): set to any non-empty value to disable shared memory.
NO_SHM_ENV = "REPRO_NO_SHM"

#: How long a worker waits for a free ring slot before giving up — only
#: reachable when the parent stops consuming results it asked for.
_SLOT_WAIT_SECONDS = 5.0

#: ``(old_labels, old_offsets, new_labels, new_offsets)`` in the nested-list
#: shape :meth:`~repro.core.lbl.proxy.LblProxy.prepare` accepts as
#: ``label_sets``.
LabelSets = "tuple[list[list[bytes]], list[int] | None, list[list[bytes]], list[int] | None]"


def shm_available() -> bool:
    """Whether the shared-memory result path is allowed in this process."""
    if os.environ.get(NO_SHM_ENV):
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib module
        return False
    return True


# Per-worker-process state, built once by _init_worker.
_WORKER_CODEC: LabelCodec | None = None
_WORKER_RING: "_WorkerRing | None" = None


class _WorkerRing:
    """Worker-side view of this worker's shared-memory result ring."""

    __slots__ = ("segment", "index", "slots", "slot_bytes", "next_slot")

    def __init__(self, segment, index: int, slots: int, slot_bytes: int) -> None:
        self.segment = segment
        self.index = index
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.next_slot = 0

    def write(self, payload: bytes) -> int:
        """Publish ``payload`` into a free slot; returns the slot index."""
        buf = self.segment.buf
        deadline = time.monotonic() + _SLOT_WAIT_SECONDS
        while True:
            for probe in range(self.slots):
                slot = (self.next_slot + probe) % self.slots
                if buf[slot] == 0:
                    base = self.slots + slot * self.slot_bytes
                    buf[base : base + len(payload)] = payload
                    buf[slot] = 1
                    self.next_slot = (slot + 1) % self.slots
                    return slot
            if time.monotonic() > deadline:  # pragma: no cover - parent bug
                raise CryptoPoolError(
                    "no free shared-memory result slot: the parent stopped "
                    "consuming derivations it requested"
                )
            time.sleep(0.0002)


class _ShmRings:
    """Parent-side owner of one shared-memory ring per worker.

    Segment layout: ``slots`` status bytes (0 = free, 1 = published) followed
    by ``slots`` payload areas of ``slot_bytes`` each.
    """

    def __init__(self, workers: int, slots: int, slot_bytes: int) -> None:
        from multiprocessing import shared_memory

        self.slots = slots
        self.slot_bytes = slot_bytes
        self.segments = []
        try:
            for _ in range(workers):
                segment = shared_memory.SharedMemory(
                    create=True, size=slots + slots * slot_bytes
                )
                segment.buf[:slots] = b"\x00" * slots
                self.segments.append(segment)
        except Exception:
            self.close()
            raise

    @property
    def names(self) -> list[str]:
        return [segment.name for segment in self.segments]

    def read(self, index: int, slot: int, nbytes: int) -> bytes:
        """Copy a published payload out and hand the slot back to its worker."""
        if not 0 <= index < len(self.segments) or not 0 <= slot < self.slots:
            raise CryptoPoolError(
                f"worker returned an out-of-range shm descriptor "
                f"(segment {index}, slot {slot})"
            )
        segment = self.segments[index]
        base = self.slots + slot * self.slot_bytes
        payload = bytes(segment.buf[base : base + nbytes])
        segment.buf[slot] = 0
        return payload

    def close(self) -> None:
        for segment in self.segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        self.segments = []


def _init_worker(
    label_key: bytes,
    label_out: int,
    permute_key: bytes,
    permute_out: int,
    value_len: int,
    group_bits: int,
    shm_names: "list[str] | None" = None,
    claim_counter=None,
    ring_slots: int = 0,
    slot_bytes: int = 0,
) -> None:
    """Rebuild the label codec (and claim a result ring) inside a worker.

    ``Prf`` objects carry live ``hashlib`` states and cannot be pickled, so
    the pool ships the raw key material instead and reconstructs equivalent
    PRFs here.  Each worker additionally claims one shared-memory segment —
    persistent affinity, so a worker always publishes into its own ring.
    Runs once per worker, at pool start.
    """
    global _WORKER_CODEC, _WORKER_RING
    _WORKER_CODEC = LabelCodec(
        Prf(label_key, out_bytes=label_out),
        Prf(permute_key, out_bytes=permute_out),
        value_len=value_len,
        group_bits=group_bits,
    )
    _WORKER_RING = None
    if shm_names and claim_counter is not None:
        with claim_counter.get_lock():
            index = claim_counter.value
            claim_counter.value += 1
        # A replacement worker spawned after a death can overrun the segment
        # list; it simply falls back to blob results.
        if index < len(shm_names):
            try:
                from multiprocessing import shared_memory

                # Attaching re-registers the segment with the (shared)
                # resource tracker; the tracker cache is a set, so this is a
                # no-op and the parent's ``unlink`` retires the single entry.
                segment = shared_memory.SharedMemory(name=shm_names[index])
                _WORKER_RING = _WorkerRing(segment, index, ring_slots, slot_bytes)
            except Exception:  # pragma: no cover - attach failure → fallback
                _WORKER_RING = None


def _derive_flat(
    task: "tuple[str, int, bool]",
) -> "tuple[bytes, bytes | None, bytes, bytes | None]":
    """Worker body: derive both epochs of one access as flat blobs."""
    key, counter, point_and_permute = task
    codec = _WORKER_CODEC
    if codec is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    old_blob = b"".join(
        [label for row in codec.labels_for_groups(key, counter) for label in row]
    )
    new_blob = b"".join(
        [label for row in codec.labels_for_groups(key, counter + 1) for label in row]
    )
    if point_and_permute:
        old_offsets = bytes(codec.permute_offsets(key, counter))
        new_offsets = bytes(codec.permute_offsets(key, counter + 1))
    else:
        old_offsets = new_offsets = None
    return old_blob, old_offsets, new_blob, new_offsets


def _derive_batch_parts(
    tasks: "list[tuple[str, int, bool]]",
) -> tuple[bytes, bytes]:
    """Worker body: derive a whole batch as ``(labels_blob, offsets_blob)``.

    Both epochs of every access fuse into a single
    :meth:`~repro.crypto.labels.LabelCodec.labels_for_epochs` lane dispatch
    (plus one for offsets) — the worker-side half of cross-request
    coalescing.  Blob layout: per access, the old epoch's labels then the
    new epoch's, group-major; offsets likewise, one byte per group.
    """
    codec = _WORKER_CODEC
    if codec is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    epochs: list[tuple[str, int]] = []
    for key, counter, _pnp in tasks:
        epochs.append((key, counter))
        epochs.append((key, counter + 1))
    tables = codec.labels_for_epochs(epochs)
    labels_blob = b"".join(
        [label for table in tables for row in table for label in row]
    )
    if tasks[0][2]:
        offsets_blob = b"".join(
            [bytes(offsets) for offsets in codec.permute_offsets_for_epochs(epochs)]
        )
    else:
        offsets_blob = b""
    return labels_blob, offsets_blob


def _derive_batch_blobs(tasks: "list[tuple[str, int, bool]]"):
    """Batch task on the pickled-blob fallback path."""
    return _derive_batch_parts(tasks)


def _derive_batch_shm(tasks: "list[tuple[str, int, bool]]"):
    """Batch task on the shared-memory path.

    Returns a small ``("shm", segment, slot, labels_len, offsets_len)``
    descriptor; the matrices travel through the ring.  Falls back to the
    blob return shape when this worker has no ring or the batch outgrew the
    slot size the parent provisioned.
    """
    labels_blob, offsets_blob = _derive_batch_parts(tasks)
    ring = _WORKER_RING
    if ring is None or len(labels_blob) + len(offsets_blob) > ring.slot_bytes:
        return labels_blob, offsets_blob
    slot = ring.write(labels_blob + offsets_blob)
    return "shm", ring.index, slot, len(labels_blob), len(offsets_blob)


class ProcessCryptoPool:
    """Shared pool of worker processes deriving LBL label sets.

    Args:
        keychain: Key material; the label and permute PRF keys are exported
            to the workers (see the module security note).
        value_len: Fixed plaintext length in bytes (``config.value_len``).
        group_bits: ``y`` (``config.group_bits``).
        point_and_permute: Whether tasks must also derive permute offsets.
        workers: Worker process count (>= 1).
        start_method: ``multiprocessing`` start method; default prefers
            ``fork`` when the platform offers it, else ``spawn``.
        use_shm: Carry batch results through shared-memory rings.  ``None``
            (default) auto-detects: on unless :data:`NO_SHM_ENV` is set or
            segment creation fails.  Label sets are byte-identical either
            way.
        ring_slots: Result slots per worker ring.
        max_batch: Largest :meth:`derive_batch` the rings are sized for;
            bigger batches take the blob fallback.
    """

    def __init__(
        self,
        keychain,
        *,
        value_len: int,
        group_bits: int,
        point_and_permute: bool,
        workers: int = 2,
        start_method: str | None = None,
        use_shm: bool | None = None,
        ring_slots: int = 4,
        max_batch: int = 8,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("procpool needs at least 1 worker")
        if group_bits > 8:
            raise ConfigurationError(
                "procpool offset encoding supports group_bits <= 8"
            )
        if ring_slots < 1 or max_batch < 1:
            raise ConfigurationError("ring_slots and max_batch must be >= 1")
        label_prf = keychain.label_prf
        permute_prf = keychain.permute_prf
        self.workers = workers
        self.point_and_permute = point_and_permute
        self.max_batch = max_batch
        self.task_timeout = 60.0
        self._label_len = label_prf.out_bytes
        self._table_size = 1 << group_bits
        self._num_groups = (value_len * 8 + group_bits - 1) // group_bits
        # Parent-side twin of the worker codec, used only for its analytic
        # ``derivation_cost``: the in-PRF ledger meters fire in the worker
        # processes, whose registries die with them, so the parent credits
        # the exact same counts here at submission time.
        self._codec = LabelCodec(
            label_prf, permute_prf, value_len=value_len, group_bits=group_bits
        )
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self.start_method = start_method

        self._shm: _ShmRings | None = None
        claim_counter = None
        if use_shm is None:
            use_shm = shm_available()
        if use_shm:
            per_task = 2 * self._num_groups * self._table_size * self._label_len
            if point_and_permute:
                per_task += 2 * self._num_groups
            try:
                self._shm = _ShmRings(workers, ring_slots, max_batch * per_task)
                claim_counter = ctx.Value("i", 0)
            except Exception as exc:  # pragma: no cover - platform-dependent
                _log.warning(
                    "shared-memory rings unavailable (%s); "
                    "falling back to pickled blobs",
                    exc,
                )
                self._shm = None

        self._pool = ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(
                label_prf.export_key(),
                label_prf.out_bytes,
                permute_prf.export_key(),
                permute_prf.out_bytes,
                value_len,
                group_bits,
                self._shm.names if self._shm is not None else None,
                claim_counter,
                ring_slots,
                self._shm.slot_bytes if self._shm is not None else 0,
            ),
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        if _obs.enabled:
            RECORDER.record(
                "procpool.start",
                workers=workers,
                shm=self._shm is not None,
                start_method=start_method,
            )

    @property
    def shm_enabled(self) -> bool:
        """Whether batch results travel through shared-memory rings."""
        return self._shm is not None

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #

    def _rows_from(self, blob: bytes, base: int) -> "list[list[bytes]]":
        """One epoch's nested label rows sliced out of a flat blob."""
        label_len = self._label_len
        table_size = self._table_size
        end = base + self._num_groups * table_size * label_len
        labels = iter([blob[i : i + label_len] for i in range(base, end, label_len)])
        return [list(row) for row in zip(*([labels] * table_size))]

    def _unflatten(
        self, flat: "tuple[bytes, bytes | None, bytes, bytes | None]"
    ) -> LabelSets:
        """Blob wire format back to the nested shape ``prepare`` consumes."""
        old_blob, old_offsets, new_blob, new_offsets = flat
        expected = self._num_groups * self._table_size * self._label_len
        if len(old_blob) != expected or len(new_blob) != expected:
            raise CryptoPoolError("procpool worker returned malformed label blob")
        return (
            self._rows_from(old_blob, 0),
            list(old_offsets) if old_offsets is not None else None,
            self._rows_from(new_blob, 0),
            list(new_offsets) if new_offsets is not None else None,
        )

    def _split_batch(
        self, labels_blob: bytes, offsets_blob: bytes, n: int
    ) -> "list[LabelSets]":
        """Batch blob layout back into one ``LabelSets`` per access."""
        num_groups = self._num_groups
        epoch_bytes = num_groups * self._table_size * self._label_len
        pnp = self.point_and_permute
        if len(labels_blob) != 2 * n * epoch_bytes or (
            pnp and len(offsets_blob) != 2 * n * num_groups
        ):
            raise CryptoPoolError("procpool worker returned malformed batch blob")
        out: "list[LabelSets]" = []
        for i in range(n):
            old = self._rows_from(labels_blob, (2 * i) * epoch_bytes)
            new = self._rows_from(labels_blob, (2 * i + 1) * epoch_bytes)
            if pnp:
                base = 2 * i * num_groups
                old_off = list(offsets_blob[base : base + num_groups])
                new_off = list(offsets_blob[base + num_groups : base + 2 * num_groups])
            else:
                old_off = new_off = None
            out.append((old, old_off, new, new_off))
        return out

    def _credit_derivations(
        self,
        pairs: "list[tuple[str, int]]",
        rows: "list[_ledger.LedgerRow | None] | None",
    ) -> None:
        """Analytic ledger credit for derivations that run out-of-process.

        The worker's in-PRF meters fire in its own registry, which dies with
        it; the parent credits the byte-exact closed form instead — per
        request when ``rows`` is given, so a fused batch still attributes
        every call and compression to the access that caused it.
        """
        pnp = self.point_and_permute
        cost = self._codec.derivation_cost
        for position, (key, counter) in enumerate(pairs):
            old_calls, old_comp = cost(key, counter, offsets=pnp)
            new_calls, new_comp = cost(key, counter + 1, offsets=pnp)
            row = rows[position] if rows is not None else None
            token = _ledger.activate(row) if row is not None else None
            try:
                _ledger.add_prf(old_calls + new_calls, old_comp + new_comp)
            finally:
                if token is not None:
                    _ledger.deactivate(token)

    def derive(self, key: str, counter: int) -> LabelSets:
        """Both epochs' label sets for access ``(key, counter)``, blocking.

        Routed through the shared-memory batch path when available (a batch
        of one), else through the blob path — identical bytes either way.
        """
        if self._shm is not None:
            return self.derive_batch([(key, counter)])[0]
        return self.derive_async(key, counter).get(self.task_timeout)

    def derive_async(self, key: str, counter: int) -> "_PendingLabels":
        """Submit a derivation; the returned handle's ``get()`` blocks."""
        if self._pool is None:
            raise ConfigurationError("procpool is closed")
        if _obs.enabled:
            self._credit_derivations([(key, counter)], None)
        task = (key, counter, self.point_and_permute)
        return _PendingLabels(
            self._pool.apply_async(_derive_flat, (task,)), self._unflatten
        )

    def derive_batch(
        self,
        pairs: "list[tuple[str, int]]",
        rows: "list[_ledger.LedgerRow | None] | None" = None,
    ) -> "list[LabelSets]":
        """Label sets for many accesses in **one** worker dispatch, blocking.

        The whole batch crosses the IPC channel once, the worker fuses every
        epoch into a single lane dispatch, and the result comes back through
        this worker's shared-memory ring (or one pickled blob on the
        fallback path).  Entry ``i`` is byte-identical to
        ``derive(*pairs[i])``.

        Args:
            pairs: ``(key, counter)`` per access.  Keys must be distinct —
                same-key accesses chain epochs and cannot share a batch.
            rows: Optional per-access ledger rows; each access's derivation
                cost is credited to its own row (see
                :meth:`_credit_derivations`).
        """
        if self._pool is None:
            raise ConfigurationError("procpool is closed")
        if not pairs:
            raise ConfigurationError("derive batch must contain at least one pair")
        if rows is not None and len(rows) != len(pairs):
            raise ConfigurationError(f"{len(pairs)} pairs for {len(rows)} rows")
        if _obs.enabled:
            self._credit_derivations(pairs, rows)
        tasks = [(key, counter, self.point_and_permute) for key, counter in pairs]
        fn = _derive_batch_shm if self._shm is not None else _derive_batch_blobs
        with self._inflight_lock:
            self._inflight += 1
            depth = self._inflight
        if _obs.enabled:
            REGISTRY.gauge("lbl.procpool.queue_depth").set(depth)
        try:
            handle = self._pool.apply_async(fn, (tasks,))
            try:
                result = handle.get(self.task_timeout)
            except OrtoaError:
                raise
            except mp.TimeoutError as exc:
                if _obs.enabled:
                    RECORDER.record(
                        "procpool.worker_fault",
                        cause="timeout",
                        timeout_s=self.task_timeout,
                        batch=len(pairs),
                    )
                    RECORDER.trigger("procpool-worker-fault")
                raise CryptoPoolError(
                    f"batch derivation not retrieved within {self.task_timeout}s "
                    "(worker dead or overloaded)"
                ) from exc
            except Exception as exc:
                if _obs.enabled:
                    RECORDER.record(
                        "procpool.worker_fault",
                        cause=type(exc).__name__,
                        batch=len(pairs),
                    )
                    RECORDER.trigger("procpool-worker-fault")
                raise CryptoPoolError(f"procpool worker failed: {exc}") from exc
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                depth = self._inflight
            if _obs.enabled:
                REGISTRY.gauge("lbl.procpool.queue_depth").set(depth)
        if isinstance(result, tuple) and len(result) == 5 and result[0] == "shm":
            _tag, index, slot, labels_len, offsets_len = result
            payload = self._shm.read(index, slot, labels_len + offsets_len)
            labels_blob = payload[:labels_len]
            offsets_blob = payload[labels_len:]
        else:
            labels_blob, offsets_blob = result
            if self._shm is not None and _obs.enabled:
                # The worker had a ring but answered with a blob: either its
                # ring attach failed or every slot was busy/undersized — the
                # parent-visible signature of a ring slot stall.
                REGISTRY.counter("lbl.procpool.shm_fallbacks").inc()
                RECORDER.record(
                    "procpool.shm_slot_fallback",
                    batch=len(pairs),
                    blob_bytes=len(labels_blob) + len(offsets_blob),
                )
        return self._split_batch(labels_blob, offsets_blob, len(pairs))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self, timeout: float = 10.0) -> None:
        """Drain and shut the worker processes down (idempotent).

        In-flight derivations finish (``pool.close()`` + ``join()``);
        ``terminate()`` is a last resort for workers that outlive
        ``timeout`` seconds — the pre-drain behavior, now the exception
        instead of the rule.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            if _obs.enabled:
                RECORDER.record("procpool.close", workers=self.workers)
            pool.close()
            joiner = threading.Thread(target=pool.join, daemon=True)
            joiner.start()
            joiner.join(timeout)
            if joiner.is_alive():  # pragma: no cover - stuck-worker escape
                pool.terminate()
                pool.join()
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()

    def __enter__(self) -> "ProcessCryptoPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _PendingLabels:
    """Handle for an in-flight derivation; ``get()`` re-slices the blobs."""

    __slots__ = ("_result", "_unflatten")

    def __init__(self, result, unflatten) -> None:
        self._result = result
        self._unflatten = unflatten

    def get(self, timeout: float | None = None) -> LabelSets:
        try:
            flat = self._result.get(timeout)
        except OrtoaError:
            raise
        except mp.TimeoutError as exc:
            raise CryptoPoolError(
                f"derivation not retrieved within {timeout}s "
                "(worker dead or overloaded)"
            ) from exc
        except Exception as exc:
            raise CryptoPoolError(f"procpool worker failed: {exc}") from exc
        return self._unflatten(flat)


__all__ = ["ProcessCryptoPool", "NO_SHM_ENV", "shm_available"]
