"""Proxy fault tolerance for LBL-ORTOA: a write-ahead counter log.

The paper (§5.5) notes that the stateful proxy "poses a fault tolerance
challenge since it stores information necessary to execute the protocol"
and leaves the mechanism to future work.  The state in question is tiny —
one access counter per key — which makes classic write-ahead logging a
perfect fit:

* **Log before send** — before a prepared request leaves the proxy, the
  key's new counter epoch is appended (and flushed) to the WAL.
* **Recover by replay** — a restarted proxy rebuilds its counter table from
  the latest snapshot plus the log suffix.
* **Resolve the uncertainty window** — a crash can land *between* the WAL
  append and the server applying the message, leaving the logged counter
  one epoch ahead of the server's labels.  The window is exactly one epoch
  wide (logging is synchronous), so
  :class:`DurableLblOrtoa` resolves it lazily: if the first post-recovery
  access to a key fails to open any table entry at the logged epoch, it
  rolls that key back one epoch and retries — one extra round trip, only
  for keys that were mid-flight at crash time.

Assumed failure model: crash-stop with in-flight messages lost (a dying
proxy's TCP connections die with it); Byzantine servers are §5.4's topic.
"""

from __future__ import annotations

import os
import pathlib
import random
import struct

from repro.core.base import AccessTranscript
from repro.core.lbl import LblOrtoa
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, ProtocolError
from repro.types import Request, StoreConfig

_RECORD_HEADER = struct.Struct(">IQ")  # key length, counter value


class CounterWal:
    """Append-only durable log of per-key counter epochs, with snapshots.

    Record format: ``[u32 key_len][key utf-8][u64 counter]``.  A snapshot
    file (same prefix, ``.snap``) holds a compacted full table; recovery is
    snapshot ∪ log-suffix with last-writer-wins per key.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.snapshot_path = self.path.with_suffix(self.path.suffix + ".snap")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._log = open(self.path, "ab")

    def close(self) -> None:
        """Close the underlying log file handle."""
        self._log.close()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append(self, key: str, counter: int) -> None:
        """Durably record that ``key`` is moving to epoch ``counter``."""
        encoded = key.encode("utf-8")
        self._log.write(_RECORD_HEADER.pack(len(encoded), counter))
        self._log.write(encoded)
        self._log.flush()
        os.fsync(self._log.fileno())

    def checkpoint(self, counters: dict[str, int]) -> None:
        """Write a snapshot and truncate the log (atomic via rename)."""
        tmp = self.snapshot_path.with_suffix(".tmp")
        with open(tmp, "wb") as snapshot:
            for key, counter in counters.items():
                encoded = key.encode("utf-8")
                snapshot.write(_RECORD_HEADER.pack(len(encoded), counter))
                snapshot.write(encoded)
            snapshot.flush()
            os.fsync(snapshot.fileno())
        tmp.replace(self.snapshot_path)
        self._log.close()
        self._log = open(self.path, "wb")
        self._log.flush()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    @staticmethod
    def _read_records(path: pathlib.Path) -> dict[str, int]:
        counters: dict[str, int] = {}
        if not path.exists():
            return counters
        data = path.read_bytes()
        pos = 0
        while pos + _RECORD_HEADER.size <= len(data):
            key_len, counter = _RECORD_HEADER.unpack_from(data, pos)
            pos += _RECORD_HEADER.size
            if pos + key_len > len(data):
                break  # torn tail record from a mid-write crash: discard
            key = data[pos:pos + key_len].decode("utf-8")
            pos += key_len
            counters[key] = counter
        return counters

    def replay(self) -> dict[str, int]:
        """Rebuild the counter table: snapshot, then the log suffix."""
        counters = self._read_records(self.snapshot_path)
        counters.update(self._read_records(self.path))
        return counters


class DurableLblOrtoa(LblOrtoa):
    """LBL-ORTOA whose proxy counters survive crashes.

    Args:
        config: Store configuration.
        wal_path: Path for the write-ahead log (and its snapshot).
        keychain: Key material.  Must be the *same* keychain across
            restarts (persisting it is a key-management concern, not a
            counter-state one).
        rng: Table-shuffle randomness.
    """

    name = "lbl-ortoa-durable"

    def __init__(
        self,
        config: StoreConfig,
        wal_path: str | os.PathLike,
        keychain: KeyChain | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(config, keychain=keychain, rng=rng)
        self.wal = CounterWal(wal_path)
        self.recovered_resyncs = 0

    def initialize(self, records: dict[str, bytes]) -> None:
        super().initialize(records)
        self.wal.checkpoint({key: 0 for key in records})

    def access(self, request: Request) -> AccessTranscript:
        epoch = self.proxy.counter(request.key) + 1
        self.wal.append(request.key, epoch)  # write-ahead: log THEN send
        try:
            return super().access(request)
        except ProtocolError:
            # Post-recovery uncertainty: the logged counter outran the server
            # by one (crash between append and apply), so the failed attempt
            # used old-labels one epoch too new.  Roll the counter back two
            # (undoing both the failed attempt's bump and the phantom epoch)
            # and retry once; a second failure is real corruption.
            if epoch < 2:
                raise
            self.proxy.force_counter(request.key, epoch - 2)
            self.recovered_resyncs += 1
            self.wal.append(request.key, epoch - 1)
            return super().access(request)

    def checkpoint(self) -> None:
        """Compact the WAL into a snapshot of the current counters."""
        self.wal.checkpoint(dict(self.proxy.counters()))

    @classmethod
    def recover(
        cls,
        config: StoreConfig,
        wal_path: str | os.PathLike,
        keychain: KeyChain,
        server,
        rng: random.Random | None = None,
    ) -> "DurableLblOrtoa":
        """Rebuild a proxy from its WAL, re-attaching to the live server.

        Args:
            config: Must match the crashed deployment's configuration.
            wal_path: The crashed proxy's log location.
            keychain: The crashed proxy's key material.
            server: The (still running) :class:`~repro.core.lbl.server.LblServer`.
        """
        if keychain is None:
            raise ConfigurationError("recovery requires the original keychain")
        protocol = cls(config, wal_path, keychain=keychain, rng=rng)
        protocol.server = server
        protocol.proxy.restore_counters(protocol.wal.replay())
        return protocol


__all__ = ["CounterWal", "DurableLblOrtoa"]
