"""Concurrency support for LBL-ORTOA: per-key serialization and batching.

The paper's proxy serves 32+ concurrent client threads (§6).  Correctness
under concurrency hinges on one invariant: accesses to the *same* object
must be serialized, because each access consumes the server's current
labels (counter epoch ``ct``) and installs epoch ``ct + 1`` — two in-flight
accesses to one key would both build tables against epoch ``ct`` and the
second would fail to decrypt at the server.  Accesses to *different* keys
commute freely.

:class:`ConcurrentLblProxy` enforces exactly that with striped per-key
locks, and :func:`access_batch` amortizes the WAN round trip over many
requests (distinct or repeated keys) — the natural next optimization once
round trips, not bytes, are the scarce resource.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.core.lbl import LblOrtoa
from repro.core.lbl.proxy import LblProxy
from repro.core.messages import LblAccessResponse, LblErrorEntry
from repro.errors import ConfigurationError
from repro.obs import ledger as _ledger
from repro.types import Request, Response


@contextmanager
def hold_stripes(
    stripes: "list[threading.Lock]", indices: Iterable[int]
) -> Iterator[None]:
    """Hold several stripes of one lock table at once, deadlock-free.

    Stripes are acquired in ascending index order (deduplicated), so any
    two holders — a fused server flush locking its whole window, a batch
    frame locking one key at a time — order their acquisitions identically
    and can never cycle.  Released in reverse order.
    """
    ordered = sorted(set(indices))
    acquired: "list[threading.Lock]" = []
    try:
        for index in ordered:
            stripe = stripes[index]
            stripe.acquire()
            acquired.append(stripe)
        yield
    finally:
        for stripe in reversed(acquired):
            stripe.release()


@dataclass(frozen=True, slots=True)
class BatchTranscript:
    """One combined round trip serving many requests.

    ``per_request`` holds the individual transcripts (their round-trip
    entries describe each request's share of the combined message);
    ``combined`` is the single wire exchange the batch actually costs.
    """

    per_request: tuple[AccessTranscript, ...]
    combined: RoundTrip

    @property
    def num_requests(self) -> int:
        """How many requests the batch served."""
        return len(self.per_request)

    @property
    def amortized_rounds(self) -> float:
        """Round trips per request (1/batch size)."""
        return 1.0 / len(self.per_request) if self.per_request else 0.0


def access_batch(protocol: LblOrtoa, requests: list[Request]) -> BatchTranscript:
    """Serve many requests in one logical round trip.

    Preparation is proxy-local, so all tables can be built up front — even
    for repeated keys, since each ``prepare`` advances the key's counter and
    the server applies the tables in order.  The server processes the whole
    batch before the single response travels back.

    Args:
        protocol: The deployment to run the batch on.
        requests: One or more requests; order is preserved and meaningful
            for repeated keys.
    """
    if not requests:
        raise ConfigurationError("batch must contain at least one request")
    prepared = []
    for request in requests:
        epoch = protocol.proxy.counter(request.key) + 1
        lbl_request, proxy_ops = protocol.proxy.prepare(request)
        prepared.append((request, lbl_request, proxy_ops, epoch))

    total_request_bytes = sum(len(p[1].to_bytes()) for p in prepared)
    total_response_bytes = 0
    transcripts = []
    for request, lbl_request, proxy_ops, epoch in prepared:
        response, server_ops = protocol.server.process(lbl_request)
        value, finalize_ops = protocol.proxy.finalize(request.key, response, counter=epoch)
        total_response_bytes += len(response.to_bytes())
        transcripts.append(
            AccessTranscript(
                op=request.op,
                phases=(
                    PhaseRecord("proxy-build-tables", "proxy", proxy_ops),
                    PhaseRecord("server-open-and-update", "server", server_ops),
                    PhaseRecord("proxy-decode", "proxy", finalize_ops),
                ),
                round_trips=(
                    RoundTrip(len(lbl_request.to_bytes()), len(response.to_bytes())),
                ),
                response=Response(request.key, value),
            )
        )
    return BatchTranscript(
        per_request=tuple(transcripts),
        combined=RoundTrip(total_request_bytes, total_response_bytes),
    )


def finalize_batch_entries(
    proxy: LblProxy,
    prepared: list[tuple[Request, OpCounts, int]],
    entries: tuple["LblAccessResponse | LblErrorEntry", ...],
    shares: list[tuple[int, int]],
    rows: "list[_ledger.LedgerRow | None] | None" = None,
) -> tuple[dict[int, AccessTranscript], dict[int, str]]:
    """Finalize a batch response whose entries may include per-request errors.

    Successful entries decode as usual.  For each failed entry the proxy's
    counter for that key is rolled back to the last epoch the server
    actually applied (the epoch before the key's *first* failure — the
    server processes a batch in order, so once a key fails every later
    request for it in the same batch fails too), which re-synchronizes
    proxy and server so a retry decrypts correctly.

    Args:
        proxy: The trusted proxy that prepared the batch.
        prepared: Per request: (request, prepare-phase op counts, epoch).
        entries: The batch response entries, in request order.
        shares: Per request: its (request bytes, response bytes) share of
            the wire exchange that carried it.
        rows: Optional per-request ledger rows (parallel positions); each
            entry's finalize crypto is attributed to its own row.

    Returns:
        ``(transcripts, failures)`` keyed by original request index.
    """
    transcripts: dict[int, AccessTranscript] = {}
    failures: dict[int, str] = {}
    first_failed_epoch: dict[str, int] = {}
    for index, ((request, proxy_ops, epoch), entry, share) in enumerate(
        zip(prepared, entries, shares)
    ):
        if isinstance(entry, LblErrorEntry):
            failures[index] = entry.message
            key = request.key
            first_failed_epoch[key] = min(
                first_failed_epoch.get(key, epoch), epoch
            )
            continue
        row = rows[index] if rows is not None else None
        token = _ledger.activate(row) if row is not None else None
        try:
            value, finalize_ops = proxy.finalize(request.key, entry, counter=epoch)
        finally:
            if token is not None:
                _ledger.deactivate(token)
        transcripts[index] = AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy-build-tables", "proxy", proxy_ops),
                PhaseRecord("server-remote", "server", OpCounts(kv_ops=2)),
                PhaseRecord("proxy-decode", "proxy", finalize_ops),
            ),
            round_trips=(RoundTrip(share[0], share[1]),),
            response=Response(request.key, value),
        )
    for key, epoch in first_failed_epoch.items():
        proxy.force_counter(key, epoch - 1)
    return transcripts, failures


class ConcurrentLblProxy:
    """Thread-safe front door over any single-threaded ORTOA deployment.

    Accesses to the same key are serialized by a striped lock (stripes keep
    the lock table bounded; collisions only cost parallelism, never
    correctness).  A separate shuffle lock protects the shared RNG used by
    the non-point-and-permute table shuffle.

    Args:
        protocol: The underlying single-threaded deployment — an in-process
            :class:`LblOrtoa`, a :class:`~repro.transport.client.RemoteLblOrtoa`,
            or a :class:`~repro.core.sharded.ShardedLblDeployment`.
        num_stripes: Lock stripes; more stripes = more key parallelism.
    """

    def __init__(self, protocol: OrtoaProtocol, num_stripes: int = 64) -> None:
        if num_stripes < 1:
            raise ConfigurationError("num_stripes must be >= 1")
        self._protocol = protocol
        self._stripes = [threading.Lock() for _ in range(num_stripes)]
        self._shuffle_lock = threading.Lock()
        self._needs_shuffle_lock = not protocol.config.point_and_permute
        self.completed = 0
        self._completed_lock = threading.Lock()

    def _lock_for(self, key: str) -> threading.Lock:
        return self._stripes[hash(key) % len(self._stripes)]

    def access(self, request: Request) -> AccessTranscript:
        """Thread-safe oblivious access (per-key serialization)."""
        with self._lock_for(request.key):
            if self._needs_shuffle_lock:
                # The shuffled variant draws from a shared RNG during
                # prepare; serialize that draw across keys.
                with self._shuffle_lock:
                    transcript = self._protocol.access(request)
            else:
                transcript = self._protocol.access(request)
        with self._completed_lock:
            self.completed += 1
        return transcript

    def read(self, key: str) -> bytes:
        """Thread-safe oblivious GET."""
        return self.access(Request.read(key)).response.value

    def write(self, key: str, value: bytes) -> None:
        """Thread-safe oblivious PUT."""
        self.access(Request.write(key, self._protocol.config.pad(value)))


__all__ = [
    "ConcurrentLblProxy",
    "BatchTranscript",
    "access_batch",
    "finalize_batch_entries",
    "hold_stripes",
]
