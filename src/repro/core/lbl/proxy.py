"""The trusted proxy of LBL-ORTOA (paper §5.2 step 1, §10 optimizations).

Per access to key ``k`` with counter ``ct`` the proxy:

1. regenerates the *old* labels for every group and every possible group
   value using ``PRF(k, i, v, ct)`` — it must cover all ``2^y`` candidates
   because the actual value lives only at the server;
2. generates the *new* labels under ``ct + 1``;
3. builds, per group, a table of ``2^y`` ciphertexts: for reads each old
   label encrypts its *own* new label (value preserved); for writes every
   old label encrypts the new label of the *written* group value;
4. shuffles each table (base protocol) or places entries at
   point-and-permute slots (§10.2) so position leaks nothing;
5. bumps the access counter — the only per-object state the proxy keeps
   (§5.3.1: 8 bytes per object).

After the round trip, :meth:`LblProxy.finalize` maps the opened labels back
to plaintext, which doubles as the §5.4 tamper check.

Two implementations of step 1–4 coexist:

* the **batched kernel path** (default) derives all labels through
  :meth:`~repro.crypto.labels.LabelCodec.labels_for_groups` and encrypts the
  whole table through :func:`~repro.crypto.aead.encrypt_many`, optionally
  reusing a previous access's labels from the
  :class:`~repro.core.lbl.cache.LabelCache`;
* the **scalar path** (``batched=False``) issues one PRF/AEAD call per label
  exactly as the seed implementation did.  It is kept as the benchmark
  baseline and as an equivalence oracle — both paths produce tables that
  open to byte-identical labels.

On top of the batched path, ``crypto_backend`` selects how the batch crypto
itself runs:

* ``"stdlib"`` — the batched kernels exactly as above (pad-block schedules,
  per-entry ``hashlib`` one-shots);
* ``"vector"`` — the vector pipeline: ``finalize`` attaches keyed-state
  schedules *and* prefetched nonce/keystream blocks to the cache (both
  payload-independent, hence operation-type-oblivious), so a warm
  ``prepare`` pays only the tag MAC per table entry, with XOR and
  ciphertext assembly running as whole-batch numpy array ops and the
  sha256 lane engine engaging past its calibrated threshold;
* ``"auto"`` (default) — ``"vector"`` when the lane-engine module is
  enabled (numpy importable and ``REPRO_NO_VECTOR`` unset), else
  ``"stdlib"``.

All backends produce tables that open to byte-identical labels; the choice
only moves where the HMAC work happens.
"""

from __future__ import annotations

import random

from repro.core.base import OpCounts
from repro.core.lbl.cache import DEFAULT_LABEL_CACHE_BYTES, LabelCache, LabelCacheEntry
from repro.core.messages import LblAccessRequest, LblAccessResponse
from repro.crypto import aead
from repro.crypto import sha256_lanes as _lanes
from repro.crypto.keys import KeyChain
from repro.crypto.labels import LabelCodec, StoredLabel, value_to_groups
from repro.errors import ConfigurationError, KeyNotFoundError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER
from repro.obs.trace import TRACER
from repro.types import Request, StoreConfig

try:  # numpy backs the vector pipeline's table assembly; optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None  # type: ignore[assignment]

#: Width of the serialized point-and-permute slot index appended to each
#: encrypted payload.  The paper uses 2 bits; a whole byte keeps framing
#: simple and supports y up to 8.
DECRYPT_INDEX_BYTES = 1

#: Single-byte payload suffixes, pre-built so the table loop does not
#: construct a fresh one-byte ``bytes`` object per entry.
_BYTE = [bytes((v,)) for v in range(256)]


class LblProxy:
    """Trusted, stateful proxy: key material + per-object access counters.

    Args:
        config: Deployment parameters; ``config.label_cache_entries``
            enables the proxy label cache.
        keychain: Key material.
        rng: Table-shuffle randomness (base protocol only).
        batched: Use the batched crypto kernels (default).  ``False``
            selects the scalar per-label reference path.
        crypto_backend: ``"auto"`` (default), ``"stdlib"``, or ``"vector"``
            — see the module docstring.  Only meaningful with
            ``batched=True``.
    """

    def __init__(
        self,
        config: StoreConfig,
        keychain: KeyChain,
        rng: random.Random | None = None,
        *,
        batched: bool = True,
        crypto_backend: str = "auto",
    ) -> None:
        if crypto_backend not in ("auto", "stdlib", "vector"):
            raise ConfigurationError(
                f"unknown crypto backend {crypto_backend!r}; "
                "expected 'auto', 'stdlib', or 'vector'"
            )
        self.crypto_backend = crypto_backend
        self.config = config
        self.keychain = keychain
        self.codec = LabelCodec(
            keychain.label_prf,
            keychain.permute_prf,
            value_len=config.value_len,
            group_bits=config.group_bits,
        )
        self._rng = rng or random.Random()
        self._counters: dict[str, int] = {}
        self.batched = batched
        self.label_cache: LabelCache | None = None
        entries = config.label_cache_entries
        if entries is not None:
            if entries == -1:
                self.label_cache = LabelCache.from_bytes(
                    self.codec.num_groups,
                    self.codec.table_size,
                    self.codec.label_len,
                    DEFAULT_LABEL_CACHE_BYTES,
                )
            else:
                self.label_cache = LabelCache(entries)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def proxy_state_bytes(self) -> int:
        """§5.3.1's space estimate: an 8-byte counter per tracked object."""
        return 8 * len(self._counters)

    def counter(self, key: str) -> int:
        """Current access-counter epoch for ``key``."""
        try:
            return self._counters[key]
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} was never initialized") from None

    def counters(self) -> dict[str, int]:
        """Snapshot of all access counters (for checkpointing)."""
        return dict(self._counters)

    def force_counter(self, key: str, value: int) -> None:
        """Overwrite one key's counter — recovery resynchronization only.

        Any cached label epochs for ``key`` are invalidated: after a forced
        counter move the cache can no longer prove its entries correspond to
        what the server currently stores.
        """
        if value < 0:
            raise ProtocolError("counters cannot be negative")
        if key not in self._counters:
            raise KeyNotFoundError(f"key {key!r} was never initialized")
        self._counters[key] = value
        if self.label_cache is not None:
            self.label_cache.invalidate_key(key)
        if _obs.enabled:
            # Forced counter moves are recovery events — rare, and exactly
            # what a post-mortem wants on its timeline next to the faults
            # that caused them.
            RECORDER.record("proxy.counter_forced", value=value)

    def restore_counters(self, counters: dict[str, int]) -> None:
        """Install a recovered counter table (crash recovery).

        The label cache is cleared wholesale: recovery means the in-memory
        epoch history is no longer trustworthy.
        """
        for key, value in counters.items():
            if value < 0:
                raise ProtocolError(f"negative counter for key {key!r}")
        self._counters = dict(counters)
        if self.label_cache is not None:
            self.label_cache.clear()
        if _obs.enabled:
            RECORDER.record("proxy.counters_restored", keys=len(counters))

    # ------------------------------------------------------------------ #
    # Initialization (the Init(kv) procedure of Figure 1)
    # ------------------------------------------------------------------ #

    def initial_records(
        self, records: dict[str, bytes]
    ) -> list[tuple[bytes, list[StoredLabel]]]:
        """Encode every plaintext pair into the server's stored form.

        The value is decomposed into groups exactly once per record (the
        decomposition is index-independent), and point-and-permute slots are
        derived with the batched offset kernel.
        """
        out = []
        point_and_permute = self.config.point_and_permute
        for key, value in records.items():
            if key in self._counters:
                raise ProtocolError(f"duplicate key at init: {key!r}")
            padded = self.config.pad(value)
            self._counters[key] = 0
            labels = self.codec.encode_value(key, padded, counter=0)
            if point_and_permute:
                groups = value_to_groups(padded, self.config.group_bits)
                slots = self.codec.decrypt_indices(key, groups, 0)
                stored = [
                    StoredLabel(label, slot) for label, slot in zip(labels, slots)
                ]
            else:
                stored = [StoredLabel(label) for label in labels]
            out.append((self.keychain.encode_key(key), stored))
        return out

    # ------------------------------------------------------------------ #
    # Request preparation (Pcr, Figure 1 / §5.2 step 1)
    # ------------------------------------------------------------------ #

    def vector_active(self) -> bool:
        """Whether this prepare/finalize cycle runs the vector pipeline.

        Evaluated per call so ``REPRO_NO_VECTOR`` /
        :func:`repro.crypto.sha256_lanes.lanes_disabled` take effect
        dynamically under the ``"auto"`` backend.
        """
        backend = self.crypto_backend
        if backend == "vector":
            return True
        return backend == "auto" and _lanes.enabled()

    def prepare(
        self,
        request: Request,
        label_sets: "tuple[list[list[bytes]], list[int] | None, list[list[bytes]], list[int] | None] | None" = None,
    ) -> tuple[LblAccessRequest, OpCounts]:
        """Build the one-round request and advance the access counter.

        Args:
            request: The plaintext access to serve.
            label_sets: Optional pre-derived
                ``(old_labels, old_offsets, new_labels, new_offsets)`` for
                this key's current epoch pair — the
                :class:`~repro.core.lbl.procpool.ProcessCryptoPool` hands
                these in after deriving them in a worker process.  A cached
                epoch still wins (the bytes are identical either way);
                ignored by the scalar path.
        """
        if self.batched:
            return self._prepare_batched(request, label_sets)
        return self._prepare_scalar(request)

    def _emit_prepare_span(
        self, span, request: Request, prf_count: int, enc_count: int, cache_hit: bool
    ) -> None:
        if span is None:
            return
        labels_generated = 2 * self.codec.table_size * self.codec.num_groups
        span.set_attributes(
            op=request.op.value,
            groups=self.codec.num_groups,
            table_size=self.codec.table_size,
            labels_generated=labels_generated,
            ciphertexts_built=enc_count,
            prf_calls=prf_count,
            label_cache_hit=cache_hit,
        )
        TRACER.end(span)
        REGISTRY.counter("lbl.proxy.prepares").inc()
        REGISTRY.counter("lbl.proxy.labels_generated").inc(labels_generated)
        REGISTRY.counter("lbl.proxy.ciphertexts_built").inc(enc_count)

    def _prepare_batched(
        self,
        request: Request,
        label_sets: "tuple[list[list[bytes]], list[int] | None, list[list[bytes]], list[int] | None] | None" = None,
    ) -> tuple[LblAccessRequest, OpCounts]:
        """Kernel path: batch-derive labels, batch-encrypt the whole table."""
        span = TRACER.start_span("lbl.proxy.prepare") if _obs.enabled else None
        codec = self.codec
        key = request.key
        ct = self.counter(key)
        new_ct = ct + 1
        table_size = codec.table_size
        num_groups = codec.num_groups
        point_and_permute = self.config.point_and_permute

        new_value = None
        if request.op.is_write:
            padded = self.config.pad(request.value)  # type: ignore[arg-type]
            new_value = value_to_groups(padded, self.config.group_bits)

        cached = (
            self.label_cache.take(key, ct) if self.label_cache is not None else None
        )
        cache_hit = cached is not None
        prf_count = 0
        new_labels = None
        new_offsets = None
        old_keyed = None
        old_nonces = None
        old_keystreams = None
        if cache_hit:
            old_labels = cached.labels
            old_offsets = cached.offsets
            old_schedules = cached.schedules
            old_keyed = cached.keyed
            old_nonces = cached.nonces
            old_keystreams = cached.keystreams
            # ``finalize`` may have prefetched the new epoch too, in which
            # case prepare performs no label derivation at all.
            if cached.next_labels is not None:
                new_labels = cached.next_labels
                new_offsets = cached.next_offsets
        elif label_sets is not None:
            # Derived off-proxy by a ProcessCryptoPool worker; the bytes are
            # identical to deriving here, so the PRF accounting is too.
            old_labels, old_offsets, new_labels, new_offsets = label_sets
            old_schedules = None
            prf_count += 2 * num_groups * table_size + (
                2 * num_groups if point_and_permute else 0
            )
        else:
            old_labels = codec.labels_for_groups(key, ct)
            old_offsets = (
                codec.permute_offsets(key, ct) if point_and_permute else None
            )
            old_schedules = None
            prf_count += num_groups * table_size + (
                num_groups if point_and_permute else 0
            )

        if new_labels is None:
            new_labels = codec.labels_for_groups(key, new_ct)
            prf_count += num_groups * table_size
            if point_and_permute:
                new_offsets = codec.permute_offsets(key, new_ct)
                prf_count += num_groups

        is_read = request.op.is_read
        vector = old_keyed is not None and self.vector_active()
        if (
            vector
            and _np is not None
            and point_and_permute
            and old_keystreams is not None
            and cached is not None
            and cached.next_labels_blob is not None
            and new_labels is cached.next_labels
        ):
            # Fully warm vector prepare: payloads assemble as one numpy
            # matrix viewed over the prefetched label blob (no per-entry
            # bytes objects), encryption returns the ciphertext matrix, and
            # the point-and-permute placement is a single gather.  Only the
            # per-entry tag MAC inside encrypt_many remains serial.
            tables, enc_count = self._build_tables_matrix(
                new_labels_blob=cached.next_labels_blob,
                new_offsets=new_offsets,  # type: ignore[arg-type]
                old_offsets=old_offsets,  # type: ignore[arg-type]
                old_keyed=old_keyed,
                old_nonces=old_nonces,  # type: ignore[arg-type]
                old_keystreams=old_keystreams,
                is_read=is_read,
                new_value=new_value,
            )
        else:
            # Flatten the whole table build into one encrypt_many call: entry
            # (index, value) encrypts payload(value) under
            # old_labels[index][value].
            flat_keys, flat_payloads = self._flat_table_inputs(
                old_labels, new_labels, new_offsets, new_value, is_read
            )

            if vector:
                # Vector pipeline: keyed states (and, when finalize ran in
                # time, prefetched keystreams) leave only the tag MAC per
                # entry here.  The cache stores keyed states flat already.
                ciphertexts = aead.encrypt_many(
                    flat_keys,
                    flat_payloads,
                    nonces=old_nonces if old_keystreams is not None else None,
                    keyed=old_keyed,
                    keystreams=old_keystreams,
                )
            else:
                flat_schedules = None
                if old_schedules is not None:
                    flat_schedules = [pair for row in old_schedules for pair in row]
                ciphertexts = aead.encrypt_many(
                    flat_keys, flat_payloads, schedules=flat_schedules
                )
            enc_count = len(ciphertexts)
            tables = self._assemble_tables(ciphertexts, old_offsets)

        if self.label_cache is not None:
            self.label_cache.put(
                key,
                new_ct,
                LabelCacheEntry(
                    labels=new_labels,
                    offsets=new_offsets,
                    labels_blob=cached.next_labels_blob if cache_hit else None,
                ),
            )
        self._counters[key] = new_ct
        ops = OpCounts(prf=prf_count + 1, aead_enc=enc_count)  # +1: key encoding
        self._emit_prepare_span(span, request, prf_count + 1, enc_count, cache_hit)
        return (
            LblAccessRequest(self.keychain.encode_key(key), tuple(tables)),
            ops,
        )

    def _flat_table_inputs(
        self,
        old_labels: "list[list[bytes]]",
        new_labels: "list[list[bytes]]",
        new_offsets: "list[int] | None",
        new_value: "list[int] | None",
        is_read: bool,
    ) -> "tuple[list[bytes], list[bytes]]":
        """Flat ``(keys, payloads)`` for one access's whole-table encrypt.

        Entry ``(index, value)`` encrypts ``payload(value)`` under
        ``old_labels[index][value]`` — reads carry each value's own new
        label, writes repeat the written value's label across the row, and
        point-and-permute payloads append the permuted slot byte.
        """
        table_size = self.codec.table_size
        point_and_permute = self.config.point_and_permute
        flat_keys: list[bytes] = []
        flat_payloads: list[bytes] = []
        for index in range(self.codec.num_groups):
            old_row = old_labels[index]
            new_row = new_labels[index]
            flat_keys += old_row
            if point_and_permute:
                next_offset = new_offsets[index]  # type: ignore[index]
                if is_read:
                    flat_payloads += [
                        new_row[value] + _BYTE[value ^ next_offset]
                        for value in range(table_size)
                    ]
                else:
                    target = new_value[index]  # type: ignore[index]
                    payload = new_row[target] + _BYTE[target ^ next_offset]
                    flat_payloads += [payload] * table_size
            else:
                if is_read:
                    flat_payloads += new_row
                else:
                    flat_payloads += [new_row[new_value[index]]] * table_size  # type: ignore[index]
        return flat_keys, flat_payloads

    def _assemble_tables(
        self, ciphertexts: "list[bytes]", old_offsets: "list[int] | None"
    ) -> "list[tuple[bytes, ...]]":
        """Place one access's ciphertexts into per-group tables.

        Point-and-permute entries land at ``value ^ offset``; base-protocol
        tables are shuffled so position leaks nothing.
        """
        table_size = self.codec.table_size
        tables: list[tuple[bytes, ...]] = []
        for index in range(self.codec.num_groups):
            chunk = ciphertexts[index * table_size : (index + 1) * table_size]
            if self.config.point_and_permute:
                offset = old_offsets[index]  # type: ignore[index]
                entries: list[bytes] = [b""] * table_size
                for value in range(table_size):
                    entries[value ^ offset] = chunk[value]
            else:
                entries = chunk
                self._rng.shuffle(entries)
            tables.append(tuple(entries))
        return tables

    def prepare_window(
        self,
        entries: "list[tuple[Request, tuple[list[list[bytes]], list[int] | None, list[list[bytes]], list[int] | None]]]",
        rows: "list[_ledger.LedgerRow | None] | None" = None,
    ) -> "list[tuple[LblAccessRequest, OpCounts, int]]":
        """Build many accesses' requests with **one** fused table encrypt.

        The coalescing stage's proxy half: every entry arrives with its
        label sets pre-derived (fused across the window by the caller), so
        the per-access work here is payload assembly — and the AEAD table
        encryption of the whole window runs as a single
        :func:`~repro.crypto.aead.encrypt_many` call, filling the lane
        engine the way one access alone cannot.  Requires the batched path
        and distinct keys per entry (same-key accesses chain epochs and
        must prepare sequentially).

        Payload bytes, table placement, counter bumps, and per-access op
        counts are identical to calling :meth:`prepare` once per entry with
        the same ``label_sets``; only the batching of the AEAD dispatch
        changes.  GET and PUT entries contribute identical shapes — key
        list, payload lengths, and ciphertext count per entry do not depend
        on the op — so a fused window leaks nothing about its mix.

        Args:
            entries: ``(request, label_sets)`` per access, all for distinct
                keys at their current epochs.
            rows: Optional per-access ledger rows; the fused encrypt is
                metered once in the registry and credited to each access's
                row analytically (exactly ``groups * table_size`` each), so
                fused rows still sum to registry totals.

        Returns:
            ``(lbl_request, ops, new_counter)`` per entry, in order.
        """
        if not self.batched:
            raise ConfigurationError("prepare_window requires the batched path")
        if rows is not None and len(rows) != len(entries):
            raise ConfigurationError(f"{len(entries)} entries for {len(rows)} rows")
        keys = [request.key for request, _sets in entries]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(
                "prepare_window entries must use distinct keys"
            )
        codec = self.codec
        num_groups = codec.num_groups
        table_size = codec.table_size
        point_and_permute = self.config.point_and_permute
        per_entry_enc = num_groups * table_size
        per_entry_prf = 2 * per_entry_enc + (
            2 * num_groups if point_and_permute else 0
        )

        spans = []
        all_keys: list[bytes] = []
        all_payloads: list[bytes] = []
        staged: list[tuple] = []
        for position, (request, label_sets) in enumerate(entries):
            row = rows[position] if rows is not None else None
            token = _ledger.activate(row) if row is not None else None
            try:
                span = (
                    TRACER.start_span("lbl.proxy.prepare") if _obs.enabled else None
                )
                spans.append(span)
                key = request.key
                ct = self.counter(key)
                new_value = None
                if request.op.is_write:
                    padded = self.config.pad(request.value)  # type: ignore[arg-type]
                    new_value = value_to_groups(padded, self.config.group_bits)
                # Consume (and meter) any stale cache entry; window entries
                # are routed here only on a cache miss, but a hit is still
                # byte-identical — the cache stores the same labels.
                cached = (
                    self.label_cache.take(key, ct)
                    if self.label_cache is not None
                    else None
                )
                if cached is not None:
                    old_labels, old_offsets = cached.labels, cached.offsets
                    if cached.next_labels is not None:
                        new_labels = cached.next_labels
                        new_offsets = cached.next_offsets
                    else:
                        _old, _old_off, new_labels, new_offsets = label_sets
                else:
                    old_labels, old_offsets, new_labels, new_offsets = label_sets
                flat_keys, flat_payloads = self._flat_table_inputs(
                    old_labels, new_labels, new_offsets, new_value, request.op.is_read
                )
                all_keys += flat_keys
                all_payloads += flat_payloads
                encoded_key = self.keychain.encode_key(key)
                if self.label_cache is not None:
                    self.label_cache.put(
                        key,
                        ct + 1,
                        LabelCacheEntry(labels=new_labels, offsets=new_offsets),
                    )
                self._counters[key] = ct + 1
                staged.append((request, encoded_key, old_offsets, ct + 1, row))
            finally:
                if token is not None:
                    _ledger.deactivate(token)

        # One AEAD dispatch for the whole window.  The registry meters the
        # real call once (under no ambient row); each access's row is then
        # credited its exact share.
        token = _ledger.activate(None)
        try:
            ciphertexts = aead.encrypt_many(all_keys, all_payloads)
        finally:
            _ledger.deactivate(token)

        results: "list[tuple[LblAccessRequest, OpCounts, int]]" = []
        for position, (request, encoded_key, old_offsets, new_ct, row) in enumerate(
            staged
        ):
            if row is not None:
                row.add_op("aead.encrypts", per_entry_enc)
            chunk = ciphertexts[
                position * per_entry_enc : (position + 1) * per_entry_enc
            ]
            tables = self._assemble_tables(chunk, old_offsets)
            ops = OpCounts(prf=per_entry_prf + 1, aead_enc=per_entry_enc)
            self._emit_prepare_span(
                spans[position], request, per_entry_prf + 1, per_entry_enc, False
            )
            results.append(
                (LblAccessRequest(encoded_key, tuple(tables)), ops, new_ct)
            )
        return results

    def _build_tables_matrix(
        self,
        *,
        new_labels_blob: bytes,
        new_offsets: list[int],
        old_offsets: list[int],
        old_keyed: list,
        old_nonces: list[bytes],
        old_keystreams: list[bytes],
        is_read: bool,
        new_value: "tuple[int, ...] | None",
    ) -> tuple[list[tuple[bytes, ...]], int]:
        """Whole-table build as numpy array ops (warm vector prepare).

        Byte-identical to the list path: the payload of entry ``(g, v)`` is
        ``new_label[g][v or target] || (v_or_target ^ new_offset[g])``, the
        ciphertext lands at slot ``v ^ old_offset[g]``.  The payload matrix
        is viewed straight over the prefetched label blob, and the
        point-and-permute placement is one gather over the ciphertext
        matrix instead of a per-entry slot loop.
        """
        codec = self.codec
        num_groups = codec.num_groups
        table_size = codec.table_size
        label_len = codec.label_len
        n = num_groups * table_size
        labels_mat = _np.frombuffer(new_labels_blob, dtype=_np.uint8).reshape(
            n, label_len
        )
        offs = _np.asarray(new_offsets, dtype=_np.uint8)
        payloads = _np.empty((n, label_len + DECRYPT_INDEX_BYTES), dtype=_np.uint8)
        if is_read:
            payloads[:, :label_len] = labels_mat
            payloads[:, label_len] = _np.tile(
                _np.arange(table_size, dtype=_np.uint8), num_groups
            ) ^ _np.repeat(offs, table_size)
        else:
            targets = _np.asarray(new_value, dtype=_np.int64)
            rows = labels_mat.reshape(num_groups, table_size, label_len)[
                _np.arange(num_groups), targets
            ]
            payloads[:, :label_len] = _np.repeat(rows, table_size, axis=0)
            payloads[:, label_len] = _np.repeat(
                targets.astype(_np.uint8) ^ offs, table_size
            )
        cipher = aead.encrypt_many(
            None,
            payloads,
            nonces=old_nonces,
            keyed=old_keyed,
            keystreams=old_keystreams,
            as_matrix=True,
        )
        # Output slot s of group g holds the entry built for value s ^ off_g
        # (== the entry at flat index g*T + (s ^ off_g)); one fancy-index
        # gather applies every group's permutation at once.
        slot_values = _np.tile(_np.arange(table_size, dtype=_np.int64), num_groups)
        sources = (
            _np.repeat(
                _np.arange(num_groups, dtype=_np.int64) * table_size, table_size
            )
            + (slot_values ^ _np.repeat(_np.asarray(old_offsets), table_size))
        )
        flat = cipher[sources].tobytes()
        entry_len = cipher.shape[1]
        entries = [
            flat[start : start + entry_len]
            for start in range(0, n * entry_len, entry_len)
        ]
        # Group the flat entry list into per-group tuples at C speed: zip
        # over table_size references to one iterator yields consecutive
        # table_size-tuples.
        it = iter(entries)
        tables = list(zip(*([it] * table_size)))
        return tables, n

    def _prepare_scalar(self, request: Request) -> tuple[LblAccessRequest, OpCounts]:
        """Seed reference path: one PRF/AEAD call per label and table entry.

        Kept verbatim as the self-relative benchmark baseline
        (``benchmarks/test_kernel_speedup.py``) and as the equivalence
        oracle for the batched kernels.
        """
        span = TRACER.start_span("lbl.proxy.prepare") if _obs.enabled else None
        key = request.key
        ct = self.counter(key)
        new_ct = ct + 1
        table_size = self.codec.table_size

        new_value = None
        if request.op.is_write:
            padded = self.config.pad(request.value)  # type: ignore[arg-type]
            new_value = value_to_groups(padded, self.config.group_bits)

        prf_count = 0
        enc_count = 0
        tables: list[tuple[bytes, ...]] = []
        for index in range(self.codec.num_groups):
            old_labels = self.codec.labels_for_group(key, index, ct)
            new_labels = self.codec.labels_for_group(key, index, new_ct)
            prf_count += 2 * table_size

            entries: list[bytes | None] = [None] * table_size
            if self.config.point_and_permute:
                # Two permute-offset PRF calls per group: one linking the old
                # labels to slots, one (inside decrypt_index) for the next
                # access's slot carried in the payload.
                offset_old = self.codec.permute_offset(key, index, ct)
                prf_count += 2
                for value in range(table_size):
                    target = value if request.op.is_read else new_value[index]  # type: ignore[index]
                    payload = new_labels[target] + bytes(
                        [self.codec.decrypt_index(key, index, target, new_ct)]
                    )
                    slot = value ^ offset_old
                    entries[slot] = aead.encrypt(old_labels[value], payload)
                    enc_count += 1
            else:
                for value in range(table_size):
                    target = value if request.op.is_read else new_value[index]  # type: ignore[index]
                    entries[value] = aead.encrypt(old_labels[value], new_labels[target])
                    enc_count += 1
                self._rng.shuffle(entries)
            tables.append(tuple(entries))  # type: ignore[arg-type]

        self._counters[key] = new_ct
        ops = OpCounts(prf=prf_count + 1, aead_enc=enc_count)  # +1: key encoding
        self._emit_prepare_span(span, request, prf_count + 1, enc_count, False)
        return (
            LblAccessRequest(self.keychain.encode_key(key), tuple(tables)),
            ops,
        )

    # ------------------------------------------------------------------ #
    # Response handling (§5.2 step 2.2 tail + §5.4 tamper check)
    # ------------------------------------------------------------------ #

    def finalize(
        self,
        key: str,
        response: LblAccessResponse,
        counter: int | None = None,
    ) -> tuple[bytes, OpCounts]:
        """Map opened labels back to the plaintext value.

        For reads this recovers the stored value; for writes it echoes the
        value just written (the labels now encode it).  Either way the
        label-to-candidate match is the §5.4 integrity check.

        When the label cache is enabled, the candidate set comes from the
        epoch cached by :meth:`prepare` (no re-derivation), and the cached
        entry is enriched with (a) precomputed AEAD key schedules so the
        *next* access's table encryption skips its per-entry key derivation
        and (b) the prefetched next-epoch labels/offsets so the next access
        skips label derivation entirely.  All of it happens after the request
        already left the proxy, i.e. off the one-round-trip critical path
        (the work shift is visible in the finalize row of
        ``BENCH_kernels.json``).

        Args:
            key: The accessed key.
            response: The server's opened labels.
            counter: Label epoch of the response.  Defaults to the key's
                current counter — correct for the prepare/process/finalize
                cycle of a single access; batched pipelines that prepare
                several epochs up front must pass the epoch explicitly.

        Raises:
            TamperDetectedError: a label matches no candidate.
        """
        new_ct = self.counter(key) if counter is None else counter
        labels = list(response.opened_labels)
        cached = (
            self.label_cache.peek(key, new_ct)
            if self.label_cache is not None
            else None
        )
        if cached is not None:
            codec = self.codec
            vector = self.vector_active()
            value = codec.decode_from_candidates(
                cached.labels, labels, blob=cached.labels_blob
            )
            if vector:
                # Keyed states + payload-independent keystream blocks: both
                # are functions of (label, nonce) only, so deriving them now
                # reveals nothing about the next operation's type.
                self.label_cache.attach_keystreams(key, new_ct)
            else:
                self.label_cache.attach_schedules(key, new_ct)
            prefetch_prf = 0
            if cached.next_labels is None:
                # Label prefetch: epoch ``new_ct + 1`` is a deterministic
                # function of the key, so derive it now — during the idle
                # window after the response, not on the next access's
                # request-build critical path.
                point_and_permute = self.config.point_and_permute
                next_labels = codec.labels_for_groups(key, new_ct + 1)
                next_offsets = (
                    codec.permute_offsets(key, new_ct + 1)
                    if point_and_permute
                    else None
                )
                prefetch_prf = codec.num_groups * codec.table_size + (
                    codec.num_groups if point_and_permute else 0
                )
                self.label_cache.attach_prefetch(
                    key,
                    new_ct,
                    next_labels,
                    next_offsets,
                    # Joined once here so the next warm prepare (and the
                    # next finalize's decode) can view the labels as one
                    # numpy matrix instead of 2^y * num_groups objects.
                    next_labels_blob=(
                        b"".join(
                            [label for row in next_labels for label in row]
                        )
                        if vector
                        else None
                    ),
                )
            ops = OpCounts(prf=prefetch_prf)
        else:
            value = self.codec.decode_labels(key, labels, new_ct)
            ops = OpCounts(prf=self.codec.table_size * self.codec.num_groups)
        if _obs.enabled:
            REGISTRY.counter("lbl.proxy.finalizes").inc()
        return value, ops


__all__ = ["LblProxy", "DECRYPT_INDEX_BYTES"]
