"""The trusted proxy of LBL-ORTOA (paper §5.2 step 1, §10 optimizations).

Per access to key ``k`` with counter ``ct`` the proxy:

1. regenerates the *old* labels for every group and every possible group
   value using ``PRF(k, i, v, ct)`` — it must cover all ``2^y`` candidates
   because the actual value lives only at the server;
2. generates the *new* labels under ``ct + 1``;
3. builds, per group, a table of ``2^y`` ciphertexts: for reads each old
   label encrypts its *own* new label (value preserved); for writes every
   old label encrypts the new label of the *written* group value;
4. shuffles each table (base protocol) or places entries at
   point-and-permute slots (§10.2) so position leaks nothing;
5. bumps the access counter — the only per-object state the proxy keeps
   (§5.3.1: 8 bytes per object).

After the round trip, :meth:`LblProxy.finalize` maps the opened labels back
to plaintext, which doubles as the §5.4 tamper check.

Two implementations of step 1–4 coexist:

* the **batched kernel path** (default) derives all labels through
  :meth:`~repro.crypto.labels.LabelCodec.labels_for_groups` and encrypts the
  whole table through :func:`~repro.crypto.aead.encrypt_many`, optionally
  reusing a previous access's labels from the
  :class:`~repro.core.lbl.cache.LabelCache`;
* the **scalar path** (``batched=False``) issues one PRF/AEAD call per label
  exactly as the seed implementation did.  It is kept as the benchmark
  baseline and as an equivalence oracle — both paths produce tables that
  open to byte-identical labels.
"""

from __future__ import annotations

import random

from repro.core.base import OpCounts
from repro.core.lbl.cache import DEFAULT_LABEL_CACHE_BYTES, LabelCache, LabelCacheEntry
from repro.core.messages import LblAccessRequest, LblAccessResponse
from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.crypto.labels import LabelCodec, StoredLabel, value_to_groups
from repro.errors import KeyNotFoundError, ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.types import Request, StoreConfig

#: Width of the serialized point-and-permute slot index appended to each
#: encrypted payload.  The paper uses 2 bits; a whole byte keeps framing
#: simple and supports y up to 8.
DECRYPT_INDEX_BYTES = 1

#: Single-byte payload suffixes, pre-built so the table loop does not
#: construct a fresh one-byte ``bytes`` object per entry.
_BYTE = [bytes((v,)) for v in range(256)]


class LblProxy:
    """Trusted, stateful proxy: key material + per-object access counters.

    Args:
        config: Deployment parameters; ``config.label_cache_entries``
            enables the proxy label cache.
        keychain: Key material.
        rng: Table-shuffle randomness (base protocol only).
        batched: Use the batched crypto kernels (default).  ``False``
            selects the scalar per-label reference path.
    """

    def __init__(
        self,
        config: StoreConfig,
        keychain: KeyChain,
        rng: random.Random | None = None,
        *,
        batched: bool = True,
    ) -> None:
        self.config = config
        self.keychain = keychain
        self.codec = LabelCodec(
            keychain.label_prf,
            keychain.permute_prf,
            value_len=config.value_len,
            group_bits=config.group_bits,
        )
        self._rng = rng or random.Random()
        self._counters: dict[str, int] = {}
        self.batched = batched
        self.label_cache: LabelCache | None = None
        entries = config.label_cache_entries
        if entries is not None:
            if entries == -1:
                self.label_cache = LabelCache.from_bytes(
                    self.codec.num_groups,
                    self.codec.table_size,
                    self.codec.label_len,
                    DEFAULT_LABEL_CACHE_BYTES,
                )
            else:
                self.label_cache = LabelCache(entries)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def proxy_state_bytes(self) -> int:
        """§5.3.1's space estimate: an 8-byte counter per tracked object."""
        return 8 * len(self._counters)

    def counter(self, key: str) -> int:
        """Current access-counter epoch for ``key``."""
        try:
            return self._counters[key]
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} was never initialized") from None

    def counters(self) -> dict[str, int]:
        """Snapshot of all access counters (for checkpointing)."""
        return dict(self._counters)

    def force_counter(self, key: str, value: int) -> None:
        """Overwrite one key's counter — recovery resynchronization only.

        Any cached label epochs for ``key`` are invalidated: after a forced
        counter move the cache can no longer prove its entries correspond to
        what the server currently stores.
        """
        if value < 0:
            raise ProtocolError("counters cannot be negative")
        if key not in self._counters:
            raise KeyNotFoundError(f"key {key!r} was never initialized")
        self._counters[key] = value
        if self.label_cache is not None:
            self.label_cache.invalidate_key(key)

    def restore_counters(self, counters: dict[str, int]) -> None:
        """Install a recovered counter table (crash recovery).

        The label cache is cleared wholesale: recovery means the in-memory
        epoch history is no longer trustworthy.
        """
        for key, value in counters.items():
            if value < 0:
                raise ProtocolError(f"negative counter for key {key!r}")
        self._counters = dict(counters)
        if self.label_cache is not None:
            self.label_cache.clear()

    # ------------------------------------------------------------------ #
    # Initialization (the Init(kv) procedure of Figure 1)
    # ------------------------------------------------------------------ #

    def initial_records(
        self, records: dict[str, bytes]
    ) -> list[tuple[bytes, list[StoredLabel]]]:
        """Encode every plaintext pair into the server's stored form.

        The value is decomposed into groups exactly once per record (the
        decomposition is index-independent), and point-and-permute slots are
        derived with the batched offset kernel.
        """
        out = []
        point_and_permute = self.config.point_and_permute
        for key, value in records.items():
            if key in self._counters:
                raise ProtocolError(f"duplicate key at init: {key!r}")
            padded = self.config.pad(value)
            self._counters[key] = 0
            labels = self.codec.encode_value(key, padded, counter=0)
            if point_and_permute:
                groups = value_to_groups(padded, self.config.group_bits)
                slots = self.codec.decrypt_indices(key, groups, 0)
                stored = [
                    StoredLabel(label, slot) for label, slot in zip(labels, slots)
                ]
            else:
                stored = [StoredLabel(label) for label in labels]
            out.append((self.keychain.encode_key(key), stored))
        return out

    # ------------------------------------------------------------------ #
    # Request preparation (Pcr, Figure 1 / §5.2 step 1)
    # ------------------------------------------------------------------ #

    def prepare(self, request: Request) -> tuple[LblAccessRequest, OpCounts]:
        """Build the one-round request and advance the access counter."""
        if self.batched:
            return self._prepare_batched(request)
        return self._prepare_scalar(request)

    def _emit_prepare_span(
        self, span, request: Request, prf_count: int, enc_count: int, cache_hit: bool
    ) -> None:
        if span is None:
            return
        labels_generated = 2 * self.codec.table_size * self.codec.num_groups
        span.set_attributes(
            op=request.op.value,
            groups=self.codec.num_groups,
            table_size=self.codec.table_size,
            labels_generated=labels_generated,
            ciphertexts_built=enc_count,
            prf_calls=prf_count,
            label_cache_hit=cache_hit,
        )
        TRACER.end(span)
        REGISTRY.counter("lbl.proxy.prepares").inc()
        REGISTRY.counter("lbl.proxy.labels_generated").inc(labels_generated)
        REGISTRY.counter("lbl.proxy.ciphertexts_built").inc(enc_count)

    def _prepare_batched(self, request: Request) -> tuple[LblAccessRequest, OpCounts]:
        """Kernel path: batch-derive labels, batch-encrypt the whole table."""
        span = TRACER.start_span("lbl.proxy.prepare") if _obs.enabled else None
        codec = self.codec
        key = request.key
        ct = self.counter(key)
        new_ct = ct + 1
        table_size = codec.table_size
        num_groups = codec.num_groups
        point_and_permute = self.config.point_and_permute

        new_value = None
        if request.op.is_write:
            padded = self.config.pad(request.value)  # type: ignore[arg-type]
            new_value = value_to_groups(padded, self.config.group_bits)

        cached = (
            self.label_cache.take(key, ct) if self.label_cache is not None else None
        )
        cache_hit = cached is not None
        prf_count = 0
        new_labels = None
        new_offsets = None
        if cache_hit:
            old_labels = cached.labels
            old_offsets = cached.offsets
            old_schedules = cached.schedules
            # ``finalize`` may have prefetched the new epoch too, in which
            # case prepare performs no label derivation at all.
            if cached.next_labels is not None:
                new_labels = cached.next_labels
                new_offsets = cached.next_offsets
        else:
            old_labels = codec.labels_for_groups(key, ct)
            old_offsets = (
                codec.permute_offsets(key, ct) if point_and_permute else None
            )
            old_schedules = None
            prf_count += num_groups * table_size + (
                num_groups if point_and_permute else 0
            )

        if new_labels is None:
            new_labels = codec.labels_for_groups(key, new_ct)
            prf_count += num_groups * table_size
            if point_and_permute:
                new_offsets = codec.permute_offsets(key, new_ct)
                prf_count += num_groups

        # Flatten the whole table build into one encrypt_many call: entry
        # (index, value) encrypts payload(value) under old_labels[index][value].
        flat_keys: list[bytes] = []
        flat_payloads: list[bytes] = []
        is_read = request.op.is_read
        for index in range(num_groups):
            old_row = old_labels[index]
            new_row = new_labels[index]
            flat_keys += old_row
            if point_and_permute:
                next_offset = new_offsets[index]  # type: ignore[index]
                if is_read:
                    flat_payloads += [
                        new_row[value] + _BYTE[value ^ next_offset]
                        for value in range(table_size)
                    ]
                else:
                    target = new_value[index]  # type: ignore[index]
                    payload = new_row[target] + _BYTE[target ^ next_offset]
                    flat_payloads += [payload] * table_size
            else:
                if is_read:
                    flat_payloads += new_row
                else:
                    flat_payloads += [new_row[new_value[index]]] * table_size  # type: ignore[index]

        flat_schedules = None
        if old_schedules is not None:
            flat_schedules = [pair for row in old_schedules for pair in row]
        ciphertexts = aead.encrypt_many(
            flat_keys, flat_payloads, schedules=flat_schedules
        )
        enc_count = len(ciphertexts)

        tables: list[tuple[bytes, ...]] = []
        for index in range(num_groups):
            chunk = ciphertexts[index * table_size : (index + 1) * table_size]
            if point_and_permute:
                offset = old_offsets[index]  # type: ignore[index]
                entries: list[bytes] = [b""] * table_size
                for value in range(table_size):
                    entries[value ^ offset] = chunk[value]
            else:
                entries = chunk
                self._rng.shuffle(entries)
            tables.append(tuple(entries))

        if self.label_cache is not None:
            self.label_cache.put(
                key, new_ct, LabelCacheEntry(labels=new_labels, offsets=new_offsets)
            )
        self._counters[key] = new_ct
        ops = OpCounts(prf=prf_count + 1, aead_enc=enc_count)  # +1: key encoding
        self._emit_prepare_span(span, request, prf_count + 1, enc_count, cache_hit)
        return (
            LblAccessRequest(self.keychain.encode_key(key), tuple(tables)),
            ops,
        )

    def _prepare_scalar(self, request: Request) -> tuple[LblAccessRequest, OpCounts]:
        """Seed reference path: one PRF/AEAD call per label and table entry.

        Kept verbatim as the self-relative benchmark baseline
        (``benchmarks/test_kernel_speedup.py``) and as the equivalence
        oracle for the batched kernels.
        """
        span = TRACER.start_span("lbl.proxy.prepare") if _obs.enabled else None
        key = request.key
        ct = self.counter(key)
        new_ct = ct + 1
        table_size = self.codec.table_size

        new_value = None
        if request.op.is_write:
            padded = self.config.pad(request.value)  # type: ignore[arg-type]
            new_value = value_to_groups(padded, self.config.group_bits)

        prf_count = 0
        enc_count = 0
        tables: list[tuple[bytes, ...]] = []
        for index in range(self.codec.num_groups):
            old_labels = self.codec.labels_for_group(key, index, ct)
            new_labels = self.codec.labels_for_group(key, index, new_ct)
            prf_count += 2 * table_size

            entries: list[bytes | None] = [None] * table_size
            if self.config.point_and_permute:
                # Two permute-offset PRF calls per group: one linking the old
                # labels to slots, one (inside decrypt_index) for the next
                # access's slot carried in the payload.
                offset_old = self.codec.permute_offset(key, index, ct)
                prf_count += 2
                for value in range(table_size):
                    target = value if request.op.is_read else new_value[index]  # type: ignore[index]
                    payload = new_labels[target] + bytes(
                        [self.codec.decrypt_index(key, index, target, new_ct)]
                    )
                    slot = value ^ offset_old
                    entries[slot] = aead.encrypt(old_labels[value], payload)
                    enc_count += 1
            else:
                for value in range(table_size):
                    target = value if request.op.is_read else new_value[index]  # type: ignore[index]
                    entries[value] = aead.encrypt(old_labels[value], new_labels[target])
                    enc_count += 1
                self._rng.shuffle(entries)
            tables.append(tuple(entries))  # type: ignore[arg-type]

        self._counters[key] = new_ct
        ops = OpCounts(prf=prf_count + 1, aead_enc=enc_count)  # +1: key encoding
        self._emit_prepare_span(span, request, prf_count + 1, enc_count, False)
        return (
            LblAccessRequest(self.keychain.encode_key(key), tuple(tables)),
            ops,
        )

    # ------------------------------------------------------------------ #
    # Response handling (§5.2 step 2.2 tail + §5.4 tamper check)
    # ------------------------------------------------------------------ #

    def finalize(
        self,
        key: str,
        response: LblAccessResponse,
        counter: int | None = None,
    ) -> tuple[bytes, OpCounts]:
        """Map opened labels back to the plaintext value.

        For reads this recovers the stored value; for writes it echoes the
        value just written (the labels now encode it).  Either way the
        label-to-candidate match is the §5.4 integrity check.

        When the label cache is enabled, the candidate set comes from the
        epoch cached by :meth:`prepare` (no re-derivation), and the cached
        entry is enriched with (a) precomputed AEAD key schedules so the
        *next* access's table encryption skips its per-entry key derivation
        and (b) the prefetched next-epoch labels/offsets so the next access
        skips label derivation entirely.  All of it happens after the request
        already left the proxy, i.e. off the one-round-trip critical path
        (the work shift is visible in the finalize row of
        ``BENCH_kernels.json``).

        Args:
            key: The accessed key.
            response: The server's opened labels.
            counter: Label epoch of the response.  Defaults to the key's
                current counter — correct for the prepare/process/finalize
                cycle of a single access; batched pipelines that prepare
                several epochs up front must pass the epoch explicitly.

        Raises:
            TamperDetectedError: a label matches no candidate.
        """
        new_ct = self.counter(key) if counter is None else counter
        labels = list(response.opened_labels)
        cached = (
            self.label_cache.peek(key, new_ct)
            if self.label_cache is not None
            else None
        )
        if cached is not None:
            codec = self.codec
            value = codec.decode_from_candidates(cached.labels, labels)
            self.label_cache.attach_schedules(key, new_ct)
            prefetch_prf = 0
            if cached.next_labels is None:
                # Label prefetch: epoch ``new_ct + 1`` is a deterministic
                # function of the key, so derive it now — during the idle
                # window after the response, not on the next access's
                # request-build critical path.
                point_and_permute = self.config.point_and_permute
                next_labels = codec.labels_for_groups(key, new_ct + 1)
                next_offsets = (
                    codec.permute_offsets(key, new_ct + 1)
                    if point_and_permute
                    else None
                )
                prefetch_prf = codec.num_groups * codec.table_size + (
                    codec.num_groups if point_and_permute else 0
                )
                self.label_cache.attach_prefetch(key, new_ct, next_labels, next_offsets)
            ops = OpCounts(prf=prefetch_prf)
        else:
            value = self.codec.decode_labels(key, labels, new_ct)
            ops = OpCounts(prf=self.codec.table_size * self.codec.num_groups)
        if _obs.enabled:
            REGISTRY.counter("lbl.proxy.finalizes").inc()
        return value, ops


__all__ = ["LblProxy", "DECRYPT_INDEX_BYTES"]
