"""The trusted proxy of LBL-ORTOA (paper §5.2 step 1, §10 optimizations).

Per access to key ``k`` with counter ``ct`` the proxy:

1. regenerates the *old* labels for every group and every possible group
   value using ``PRF(k, i, v, ct)`` — it must cover all ``2^y`` candidates
   because the actual value lives only at the server;
2. generates the *new* labels under ``ct + 1``;
3. builds, per group, a table of ``2^y`` ciphertexts: for reads each old
   label encrypts its *own* new label (value preserved); for writes every
   old label encrypts the new label of the *written* group value;
4. shuffles each table (base protocol) or places entries at
   point-and-permute slots (§10.2) so position leaks nothing;
5. bumps the access counter — the only per-object state the proxy keeps
   (§5.3.1: 8 bytes per object).

After the round trip, :meth:`LblProxy.finalize` maps the opened labels back
to plaintext, which doubles as the §5.4 tamper check.
"""

from __future__ import annotations

import random

from repro.core.base import OpCounts
from repro.core.messages import LblAccessRequest, LblAccessResponse
from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.crypto.labels import LabelCodec, StoredLabel, value_to_groups
from repro.errors import KeyNotFoundError, ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.types import Request, StoreConfig

#: Width of the serialized point-and-permute slot index appended to each
#: encrypted payload.  The paper uses 2 bits; a whole byte keeps framing
#: simple and supports y up to 8.
DECRYPT_INDEX_BYTES = 1


class LblProxy:
    """Trusted, stateful proxy: key material + per-object access counters."""

    def __init__(
        self,
        config: StoreConfig,
        keychain: KeyChain,
        rng: random.Random | None = None,
    ) -> None:
        self.config = config
        self.keychain = keychain
        self.codec = LabelCodec(
            keychain.label_prf,
            keychain.permute_prf,
            value_len=config.value_len,
            group_bits=config.group_bits,
        )
        self._rng = rng or random.Random()
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def proxy_state_bytes(self) -> int:
        """§5.3.1's space estimate: an 8-byte counter per tracked object."""
        return 8 * len(self._counters)

    def counter(self, key: str) -> int:
        """Current access-counter epoch for ``key``."""
        try:
            return self._counters[key]
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} was never initialized") from None

    def counters(self) -> dict[str, int]:
        """Snapshot of all access counters (for checkpointing)."""
        return dict(self._counters)

    def force_counter(self, key: str, value: int) -> None:
        """Overwrite one key's counter — recovery resynchronization only."""
        if value < 0:
            raise ProtocolError("counters cannot be negative")
        if key not in self._counters:
            raise KeyNotFoundError(f"key {key!r} was never initialized")
        self._counters[key] = value

    def restore_counters(self, counters: dict[str, int]) -> None:
        """Install a recovered counter table (crash recovery)."""
        for key, value in counters.items():
            if value < 0:
                raise ProtocolError(f"negative counter for key {key!r}")
        self._counters = dict(counters)

    # ------------------------------------------------------------------ #
    # Initialization (the Init(kv) procedure of Figure 1)
    # ------------------------------------------------------------------ #

    def initial_records(
        self, records: dict[str, bytes]
    ) -> list[tuple[bytes, list[StoredLabel]]]:
        """Encode every plaintext pair into the server's stored form."""
        out = []
        for key, value in records.items():
            if key in self._counters:
                raise ProtocolError(f"duplicate key at init: {key!r}")
            padded = self.config.pad(value)
            self._counters[key] = 0
            labels = self.codec.encode_value(key, padded, counter=0)
            stored = []
            for index, label in enumerate(labels):
                if self.config.point_and_permute:
                    group_value = value_to_groups(padded, self.config.group_bits)[index]
                    slot = self.codec.decrypt_index(key, index, group_value, 0)
                    stored.append(StoredLabel(label, slot))
                else:
                    stored.append(StoredLabel(label))
            out.append((self.keychain.encode_key(key), stored))
        return out

    # ------------------------------------------------------------------ #
    # Request preparation (Pcr, Figure 1 / §5.2 step 1)
    # ------------------------------------------------------------------ #

    def prepare(self, request: Request) -> tuple[LblAccessRequest, OpCounts]:
        """Build the one-round request and advance the access counter."""
        span = TRACER.start_span("lbl.proxy.prepare") if _obs.enabled else None
        key = request.key
        ct = self.counter(key)
        new_ct = ct + 1
        table_size = self.codec.table_size

        new_value = None
        if request.op.is_write:
            padded = self.config.pad(request.value)  # type: ignore[arg-type]
            new_value = value_to_groups(padded, self.config.group_bits)

        prf_count = 0
        enc_count = 0
        tables: list[tuple[bytes, ...]] = []
        for index in range(self.codec.num_groups):
            old_labels = self.codec.labels_for_group(key, index, ct)
            new_labels = self.codec.labels_for_group(key, index, new_ct)
            prf_count += 2 * table_size

            entries: list[bytes | None] = [None] * table_size
            if self.config.point_and_permute:
                # Two permute-offset PRF calls per group: one linking the old
                # labels to slots, one (inside decrypt_index) for the next
                # access's slot carried in the payload.
                offset_old = self.codec.permute_offset(key, index, ct)
                prf_count += 2
                for value in range(table_size):
                    target = value if request.op.is_read else new_value[index]  # type: ignore[index]
                    payload = new_labels[target] + bytes(
                        [self.codec.decrypt_index(key, index, target, new_ct)]
                    )
                    slot = value ^ offset_old
                    entries[slot] = aead.encrypt(old_labels[value], payload)
                    enc_count += 1
            else:
                for value in range(table_size):
                    target = value if request.op.is_read else new_value[index]  # type: ignore[index]
                    entries[value] = aead.encrypt(old_labels[value], new_labels[target])
                    enc_count += 1
                self._rng.shuffle(entries)
            tables.append(tuple(entries))  # type: ignore[arg-type]

        self._counters[key] = new_ct
        ops = OpCounts(prf=prf_count + 1, aead_enc=enc_count)  # +1: key encoding
        if span is not None:
            labels_generated = 2 * table_size * self.codec.num_groups
            span.set_attributes(
                op=request.op.value,
                groups=self.codec.num_groups,
                table_size=table_size,
                labels_generated=labels_generated,
                ciphertexts_built=enc_count,
                prf_calls=prf_count + 1,
            )
            TRACER.end(span)
            REGISTRY.counter("lbl.proxy.prepares").inc()
            REGISTRY.counter("lbl.proxy.labels_generated").inc(labels_generated)
            REGISTRY.counter("lbl.proxy.ciphertexts_built").inc(enc_count)
        return (
            LblAccessRequest(self.keychain.encode_key(key), tuple(tables)),
            ops,
        )

    # ------------------------------------------------------------------ #
    # Response handling (§5.2 step 2.2 tail + §5.4 tamper check)
    # ------------------------------------------------------------------ #

    def finalize(
        self,
        key: str,
        response: LblAccessResponse,
        counter: int | None = None,
    ) -> tuple[bytes, OpCounts]:
        """Map opened labels back to the plaintext value.

        For reads this recovers the stored value; for writes it echoes the
        value just written (the labels now encode it).  Either way the
        label-to-candidate match is the §5.4 integrity check.

        Args:
            key: The accessed key.
            response: The server's opened labels.
            counter: Label epoch of the response.  Defaults to the key's
                current counter — correct for the prepare/process/finalize
                cycle of a single access; batched pipelines that prepare
                several epochs up front must pass the epoch explicitly.

        Raises:
            TamperDetectedError: a label matches no candidate.
        """
        new_ct = self.counter(key) if counter is None else counter
        value = self.codec.decode_labels(key, list(response.opened_labels), new_ct)
        ops = OpCounts(prf=self.codec.table_size * self.codec.num_groups)
        if _obs.enabled:
            REGISTRY.counter("lbl.proxy.finalizes").inc()
        return value, ops


__all__ = ["LblProxy", "DECRYPT_INDEX_BYTES"]
