"""LBL-ORTOA: the label-based one-round protocol (paper §5 and appendix §10).

The package splits the protocol along its trust boundary:

* :class:`~repro.core.lbl.proxy.LblProxy` — trusted; owns the PRF keys and
  per-object access counters, builds the encryption tables, and decodes the
  server's opened labels back to plaintext.
* :class:`~repro.core.lbl.server.LblServer` — untrusted; stores one label
  per group and applies the table it is sent, learning nothing about the
  operation type.
* :class:`LblOrtoa` — the deployment object wiring the two together behind
  the common :class:`~repro.core.base.OrtoaProtocol` interface.

Both optimizations of the appendix are supported via
:class:`~repro.types.StoreConfig`: ``group_bits`` (one label per ``y``
plaintext bits, §10.1) and ``point_and_permute`` (the server decrypts exactly
one table entry per group, §10.2).
"""

from __future__ import annotations

from repro.core.base import (
    AccessTranscript,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.core.lbl.proxy import LblProxy
from repro.core.lbl.server import LblServer
from repro.crypto.keys import KeyChain
from repro.types import Request, Response, StoreConfig

import random


class LblOrtoa(OrtoaProtocol):
    """One-round oblivious GET/PUT via PRF-derived bit labels.

    Args:
        config: Store configuration; ``group_bits`` and ``point_and_permute``
            select the §10 optimizations.
        keychain: Key material (generated if omitted).
        rng: Randomness source for table shuffling; inject a seeded
            ``random.Random`` for deterministic tests.
        batched: Use the proxy's batched crypto kernels (default); ``False``
            selects the scalar per-label reference path (benchmarks).
        crypto_backend: ``"auto"``/``"stdlib"``/``"vector"`` — how the
            batched crypto runs (see :mod:`repro.core.lbl.proxy`).
    """

    name = "lbl-ortoa"
    rounds = 1

    def __init__(
        self,
        config: StoreConfig,
        keychain: KeyChain | None = None,
        rng: random.Random | None = None,
        *,
        batched: bool = True,
        crypto_backend: str = "auto",
    ) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain(label_bits=config.label_bits)
        self.proxy = LblProxy(
            config,
            self.keychain,
            rng=rng,
            batched=batched,
            crypto_backend=crypto_backend,
        )
        self.server = LblServer(point_and_permute=config.point_and_permute)

    def initialize(self, records: dict[str, bytes]) -> None:
        for encoded_key, labels in self.proxy.initial_records(records):
            self.server.load(encoded_key, labels)

    def access(self, request: Request) -> AccessTranscript:
        from repro.obs import _state as _obs
        from repro.obs import ledger as _ledger
        from repro.obs.trace import TRACER

        with TRACER.span("lbl.access", op=request.op.value):
            req, proxy_ops = self.proxy.prepare(request)
            resp, server_ops = self.server.process(req)
            value, finalize_ops = self.proxy.finalize(request.key, resp)
        req_bytes = len(req.to_bytes())
        resp_bytes = len(resp.to_bytes())
        if _obs.enabled:
            # In-process deployments cross no socket; meter the logical
            # request/response under role="local" so the cost model has the
            # same frame-typed view as a remote run, and credit the ambient
            # row (if an access is being tracked) with the exact exchange.
            _ledger.count_wire("access", "sent", req_bytes, role="local")
            _ledger.count_wire("access", "received", resp_bytes, role="local")
            _ledger.credit_wire("access", "sent", req_bytes)
            _ledger.credit_wire("access", "received", resp_bytes)
        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy-build-tables", "proxy", proxy_ops),
                PhaseRecord("server-open-and-update", "server", server_ops),
                PhaseRecord("proxy-decode", "proxy", finalize_ops),
            ),
            round_trips=(RoundTrip(req_bytes, resp_bytes),),
            response=Response(request.key, value),
        )


__all__ = ["LblOrtoa", "LblProxy", "LblServer"]
