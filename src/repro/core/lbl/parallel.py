"""Multi-core table preparation for LBL-ORTOA.

One LBL access touches exactly one key, and accesses to *different* keys
share no mutable proxy state beyond dictionaries guarded here — so a batch
of requests over distinct keys is embarrassingly parallel on the proxy side.
:class:`ParallelPrepareEngine` fans a batch's ``prepare`` calls across a
thread pool with the same striped-lock discipline as
:class:`~repro.core.lbl.concurrent.ConcurrentLblProxy`:

* requests for the **same key** are grouped and executed in submission order
  inside a single task (each access consumes epoch ``ct`` and installs
  ``ct + 1``; reordering would build tables against a stale epoch);
* each task holds its key's **lock stripe** while touching the proxy, so
  stripe collisions degrade parallelism but never correctness;
* the **shuffle lock** serializes draws from the shared table-shuffle RNG
  (base protocol only — point-and-permute deployments never shuffle).

On a free-threaded or multi-core interpreter the pool overlaps the PRF/AEAD
kernels of independent keys; under a GIL the crypto (tiny ``hashlib``
updates that do not release the GIL) stays serialized and ``workers=0`` is
the sensible default — which is why the benchmark gates measure the batched
kernels, not the pool.  The engine's contract is identical either way:
outputs match a sequential ``prepare`` loop exactly (modulo shuffle order
consumed from the shared RNG).

``backend="procpool"`` sidesteps the GIL entirely: label derivation — the
dominant cold-prepare cost — runs in a shared
:class:`~repro.core.lbl.procpool.ProcessCryptoPool` of worker *processes*,
and the engine's threads only wait on results and run the (cheap, cached,
or AEAD-bound) remainder of ``prepare``.  Outputs are byte-identical to the
thread backend: workers rebuild the same PRFs from the same keys, and a
proxy label-cache hit still wins over a shipped-in derivation.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.base import OpCounts
from repro.core.lbl.coalesce import DEFAULT_MAX_BATCH, PrepareCoalescer
from repro.core.lbl.procpool import ProcessCryptoPool
from repro.core.lbl.proxy import LblProxy
from repro.core.messages import LblAccessRequest
from repro.errors import ConfigurationError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.clock import Clock
from repro.obs.metrics import REGISTRY
from repro.types import Request

#: Engine backends: ``"thread"`` runs ``prepare`` fully in-process;
#: ``"procpool"`` offloads label derivation to worker processes.
PREPARE_BACKENDS = ("thread", "procpool")


class ParallelPrepareEngine:
    """Prepare a batch of LBL accesses across a worker pool.

    Args:
        proxy: The trusted proxy whose ``prepare`` is fanned out.
        workers: Pool size.  ``0`` (default) prepares serially on the
            calling thread — correct everywhere, fastest under a GIL.
        num_stripes: Per-key lock stripes (bounded lock table).
        backend: ``"thread"`` (default) or ``"procpool"`` — the latter
            derives labels in a :class:`ProcessCryptoPool` of
            ``max(1, workers)`` worker processes, overlapping the PRF
            kernels of independent keys even under a GIL.
        coalesce_window: When ``> 0``, route every prepare through a
            :class:`~repro.core.lbl.coalesce.PrepareCoalescer` with this
            flush timer (seconds): concurrent prepares fuse into windowed
            lane dispatches, and serial ``prepare_batch`` calls fuse the
            whole batch.  ``0`` (default) keeps the per-request paths.
        coalesce_batch: Size flush threshold for the coalescing window.
        coalesce_clock: Injectable time source for the flush timer
            (deterministic timer tests); defaults to wall time.
    """

    def __init__(
        self,
        proxy: LblProxy,
        workers: int = 0,
        num_stripes: int = 64,
        backend: str = "thread",
        coalesce_window: float = 0.0,
        coalesce_batch: int = DEFAULT_MAX_BATCH,
        coalesce_clock: "Clock | None" = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if num_stripes < 1:
            raise ConfigurationError("num_stripes must be >= 1")
        if backend not in PREPARE_BACKENDS:
            raise ConfigurationError(
                f"unknown prepare backend {backend!r}; expected one of "
                f"{PREPARE_BACKENDS}"
            )
        self.proxy = proxy
        self.workers = workers
        self.backend = backend
        self._stripes = [threading.Lock() for _ in range(num_stripes)]
        self._shuffle_lock = threading.Lock()
        self._needs_shuffle_lock = not proxy.config.point_and_permute
        self._pool = ThreadPoolExecutor(max_workers=workers) if workers else None
        self._procpool: ProcessCryptoPool | None = None
        if backend == "procpool":
            config = proxy.config
            self._procpool = ProcessCryptoPool(
                proxy.keychain,
                value_len=config.value_len,
                group_bits=config.group_bits,
                point_and_permute=config.point_and_permute,
                workers=max(1, workers),
                max_batch=max(coalesce_batch, 1),
            )
        self._coalescer: PrepareCoalescer | None = None
        if coalesce_window > 0:
            self._coalescer = PrepareCoalescer(
                proxy,
                window=coalesce_window,
                max_batch=coalesce_batch,
                procpool=self._procpool,
                clock=coalesce_clock,
            )

    def close(self) -> None:
        """Shut the worker pool(s) down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._procpool is not None:
            self._procpool.close()
            self._procpool = None

    def __enter__(self) -> "ParallelPrepareEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def coalescer(self) -> "PrepareCoalescer | None":
        """The coalescing stage, when enabled (``coalesce_window > 0``)."""
        return self._coalescer

    def prepare_one(
        self, request: Request, row: "_ledger.LedgerRow | None" = None
    ) -> tuple[LblAccessRequest, OpCounts, int]:
        """Prepare a single access through the engine's configured path.

        With coalescing enabled this joins the current window — concurrent
        callers (pipelined transports, multi-client deployments) fuse into
        one lane dispatch; otherwise it is a plain per-request prepare.
        Returns the same ``(wire_request, prepare_ops, epoch)`` triple as a
        :meth:`prepare_batch` entry.
        """
        return self._prepare_one(request, row)

    def _prepare_one(
        self, request: Request, row: "_ledger.LedgerRow | None" = None
    ) -> tuple[LblAccessRequest, OpCounts, int]:
        if self._coalescer is not None:
            return self._coalescer.prepare(request, row)
        # Contextvars do not follow work across the thread pool, so callers
        # that track per-request rows pass them explicitly; the row is made
        # ambient for exactly this request's crypto.
        token = _ledger.activate(row) if row is not None else None
        try:
            return self._prepare_one_inner(request)
        finally:
            if token is not None:
                _ledger.deactivate(token)

    def _prepare_one_inner(
        self, request: Request
    ) -> tuple[LblAccessRequest, OpCounts, int]:
        proxy = self.proxy
        ct = proxy.counter(request.key)
        label_sets = None
        if self._procpool is not None:
            # Skip the round trip to the worker when the proxy label cache
            # already holds this epoch — prepare would discard the shipped
            # derivation anyway (a cached epoch always wins).
            cached = (
                proxy.label_cache.peek(request.key, ct)
                if proxy.label_cache is not None
                else None
            )
            if cached is None:
                label_sets = self._procpool.derive(request.key, ct)
        if self._needs_shuffle_lock:
            with self._shuffle_lock:
                lbl_request, ops = proxy.prepare(request, label_sets)
        else:
            lbl_request, ops = proxy.prepare(request, label_sets)
        return lbl_request, ops, ct + 1

    def _prepare_key_group(
        self, indexed: "list[tuple[int, Request, _ledger.LedgerRow | None]]"
    ) -> "list[tuple[int, tuple[LblAccessRequest, OpCounts, int]]]":
        # All requests here share one key: take its stripe once, run the
        # group in submission order so epochs chain ct -> ct+1 -> ...
        stripe = self._stripes[hash(indexed[0][1].key) % len(self._stripes)]
        with stripe:
            return [
                (index, self._prepare_one(request, row))
                for index, request, row in indexed
            ]

    def prepare_batch(
        self,
        requests: "list[Request]",
        rows: "list[_ledger.LedgerRow | None] | None" = None,
    ) -> "list[tuple[LblAccessRequest, OpCounts, int]]":
        """Prepare every request; results are in request order.

        Returns one ``(wire_request, prepare_ops, epoch)`` triple per input,
        where ``epoch`` is the label counter the access installs — what
        ``finalize`` needs once the server response arrives.

        Args:
            requests: The batch, in submission order.
            rows: Optional per-request ledger rows (parallel positions);
                each request's crypto is attributed to its own row even when
                the batch fans out across pool threads.
        """
        if not requests:
            raise ConfigurationError("prepare batch must contain at least one request")
        if rows is not None and len(rows) != len(requests):
            raise ConfigurationError(
                f"{len(requests)} requests for {len(rows)} ledger rows"
            )
        if self._pool is None or len(requests) == 1:
            if self._coalescer is not None:
                # The whole batch is known up front: fuse it as one window
                # instead of paying the flush timer per request.
                return self._coalescer.prepare_all(requests, rows)
            return [
                self._prepare_one(request, rows[index] if rows else None)
                for index, request in enumerate(requests)
            ]
        # Group by key, preserving submission order within each group.
        groups: dict[str, list[tuple[int, Request, object]]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(request.key, []).append(
                (index, request, rows[index] if rows else None)
            )
        futures = [
            self._pool.submit(self._prepare_key_group, indexed)
            for indexed in groups.values()
        ]
        results: list = [None] * len(requests)
        for future in futures:
            for index, prepared in future.result():
                results[index] = prepared
        if _obs.enabled:
            REGISTRY.counter("lbl.parallel.prepared").inc(len(requests))
            REGISTRY.gauge("lbl.parallel.key_groups").set(len(groups))
        return results


__all__ = ["ParallelPrepareEngine"]
