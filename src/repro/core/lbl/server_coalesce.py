"""Server-side access window fusion for LBL-ORTOA.

The point-and-permute server (§10.2) opens exactly one designated AEAD
entry per group — but a y=1 request carries only one or two pairs, far
below the lane engine's calibrated vectorization threshold, and every
request pays its own storage get/put and bookkeeping.
:class:`ServerAccessCoalescer` is the server-side twin of the client's
:class:`~repro.core.lbl.coalesce.PrepareCoalescer`: concurrent in-flight
access requests arriving at the frame dispatcher enqueue into a bounded
**window** (flushed on ``max_batch`` fill or a timer against the
injectable :class:`~repro.obs.clock.Clock`), and the flush executes one
fused :meth:`~repro.core.lbl.server.LblServer.process_many` — a single
storage multi-get, one window-wide ``aead.open_many`` over every request's
designated pairs (8 one-pair requests fill the 8-wide SHA-256 lanes), one
multi-put of rotated labels — then fans each response back to its caller.

**Leader/follower protocol** (threaded transport).  The first caller to
find no window open becomes the *leader*: it opens the window, waits for
it to fill or for the timer to lapse, swaps the batch out, and runs the
flush on its own thread.  Followers append and block on their entry's
done-event; the leader publishes every entry's result (or error — a
failed flush never strands a follower) before returning its own.

**Submit/flush protocol** (async transport).  A single-threaded event loop
cannot block in a leader wait, so the async server uses the non-blocking
half directly: :meth:`submit` enqueues and reports ``(leader, full,
generation)``, the caller schedules :meth:`flush_pending` — immediately
when the window filled, via ``loop.call_later`` otherwise — and each
entry's ``on_done`` callback resolves that request's future on the loop.
``generation`` makes stale timers harmless: a timer armed for window *g*
no-ops once *g* has flushed, even if window *g+1* is already open.

**Obliviousness.**  Window formation is payload-independent — membership
depends only on arrival timing and ``max_batch``, never on the operation —
and a fused GET window is shape-identical to a fused PUT window: same
designated-pair counts, same flush events, same per-request span
attributes (pinned by the audit in ``tests/test_server_fusion.py``).
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Callable, ContextManager

from repro.core.base import OpCounts
from repro.core.lbl.server import LblServer
from repro.core.messages import LblAccessRequest, LblAccessResponse
from repro.errors import ConfigurationError, OrtoaError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.clock import Clock, WallClock
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER

#: Default flush window in seconds (~200µs): long enough for a burst of
#: concurrent clients to land in one window, short enough to stay invisible
#: next to the WAN round trip the protocol already pays.
DEFAULT_WINDOW_SECONDS = 0.0002

#: Default size flush threshold — matches the SHA-256 lane width, so a full
#: window of y=1 requests fills every lane with one designated pair each.
DEFAULT_MAX_BATCH = 8

#: Real-time cap on each follower-wait inside the leader's timer loop.  The
#: window clock is injectable (and may be fake), so the leader never blocks
#: on it for long stretches of *wall* time — it re-reads the clock at least
#: this often.
_LEADER_POLL_SECONDS = 0.001


class _Entry:
    """One enqueued access, owned by the window that flushes it."""

    __slots__ = ("request", "row", "done", "result", "error", "on_done")

    def __init__(
        self,
        request: LblAccessRequest,
        row: "_ledger.LedgerRow | None",
        on_done: "Callable[[_Entry], None] | None" = None,
    ) -> None:
        self.request = request
        self.row = row
        self.done = threading.Event()
        self.result: "tuple[LblAccessResponse, OpCounts] | None" = None
        self.error: BaseException | None = None
        self.on_done = on_done


class ServerAccessCoalescer:
    """Fuse concurrent server accesses into windowed ``process_many`` calls.

    Args:
        lbl: The :class:`~repro.core.lbl.server.LblServer` whose accesses
            are coalesced.
        window: Flush timer in seconds — the longest a lone request waits
            for company.  ``0`` flushes every window immediately (coalescing
            only what arrived while the previous flush ran).
        max_batch: Size flush threshold; a window with this many entries
            flushes without waiting for the timer.
        clock: Time source for the flush timer (default
            :class:`~repro.obs.clock.WallClock`); tests inject a
            :class:`~repro.obs.clock.FakeClock`.
        lock_keys: Optional callable returning a context manager that holds
            whatever per-key locks the transport requires for the given
            encoded keys — the threaded dispatcher passes its stripe table
            so a fused flush coexists with the (separately locked) batch
            frame path.  Defaults to no locking.
    """

    def __init__(
        self,
        lbl: LblServer,
        *,
        window: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        clock: Clock | None = None,
        lock_keys: "Callable[[list[bytes]], ContextManager] | None" = None,
    ) -> None:
        if window < 0:
            raise ConfigurationError("server window must be >= 0 seconds")
        if max_batch < 1:
            raise ConfigurationError("server max_batch must be >= 1")
        self.lbl = lbl
        self.window = window
        self.max_batch = max_batch
        self.clock: Clock = clock if clock is not None else WallClock()
        self._lock_keys = lock_keys
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._pending: "list[_Entry]" = []
        self._window_open = False
        self._full = threading.Event()
        self._generation = 0

    # ------------------------------------------------------------------ #
    # Enqueue side
    # ------------------------------------------------------------------ #

    def submit(
        self,
        request: LblAccessRequest,
        row: "_ledger.LedgerRow | None" = None,
        on_done: "Callable[[_Entry], None] | None" = None,
    ) -> "tuple[_Entry, bool, bool, int, threading.Event]":
        """Enqueue one access into the current window (non-blocking).

        Returns ``(entry, is_leader, is_full, generation, full_event)``.
        The caller owns the flush decision: a blocking caller runs the
        leader wait (:meth:`process` does this); an event-loop caller
        schedules :meth:`flush_pending` for ``generation`` — immediately
        when ``is_full``, after ``window`` seconds otherwise — and reads
        the result from ``on_done``.
        """
        entry = _Entry(request, row, on_done)
        with self._lock:
            is_leader = not self._window_open
            if is_leader:
                self._window_open = True
                self._generation += 1
                self._pending = [entry]
                self._full = threading.Event()
            else:
                self._pending.append(entry)
            is_full = len(self._pending) >= self.max_batch
            if is_full:
                self._full.set()
            return entry, is_leader, is_full, self._generation, self._full

    def process(
        self, request: LblAccessRequest, row: "_ledger.LedgerRow | None" = None
    ) -> "tuple[LblAccessResponse, OpCounts]":
        """Serve one access through the current window (blocking).

        Returns exactly what ``LblServer.process`` would; raises exactly the
        error it would.  The caller's ambient ledger row is captured when
        ``row`` is not given, so crediting survives the hop onto the
        leader's thread.
        """
        if row is None:
            row = _ledger.current_row()
        entry, is_leader, is_full, generation, full = self.submit(request, row)
        if is_full:
            # The filling caller runs the size flush itself: it is already
            # scheduled, so the window skips a leader-wakeup handoff (the
            # leader's wait sees ``full`` set and its flush call no-ops).
            self.flush_pending(reason="size", generation=generation)
        if is_leader:
            self._lead(generation, full)
        else:
            entry.done.wait()
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result

    def _lead(self, generation: int, full: threading.Event) -> None:
        """Run the window this thread opened: wait, then flush it."""
        opened = self.clock.now()
        while not full.is_set():
            remaining = self.window - (self.clock.now() - opened)
            if remaining <= 0:
                break
            full.wait(min(remaining, _LEADER_POLL_SECONDS))
        reason = "size" if full.is_set() else "timer"
        self.flush_pending(reason=reason, generation=generation)

    # ------------------------------------------------------------------ #
    # Flush side
    # ------------------------------------------------------------------ #

    def flush_pending(
        self, reason: str = "timer", generation: int | None = None
    ) -> bool:
        """Close and flush the open window, if it is still ``generation``.

        Returns True when a window was flushed.  Safe to call from a stale
        timer: if the target window already flushed (by size, or by an
        earlier timer) this is a no-op, even when a newer window is open.
        """
        with self._lock:
            if not self._window_open:
                return False
            if generation is not None and generation != self._generation:
                return False
            batch = self._pending
            self._pending = []
            self._window_open = False
        try:
            self.flush(batch, reason=reason)
        except BaseException as exc:
            # Never strand a caller: a failed flush raises for everyone.
            for entry in batch:
                if not entry.done.is_set():
                    entry.error = exc
                    self._finish(entry)
        return True

    def flush(self, batch: "list[_Entry]", reason: str = "explicit") -> None:
        """Serve one window fused and publish per-entry results.

        The whole flush holds the transport's per-key locks for the
        window's (deduplicated, sorted) keys, runs exactly one
        :meth:`~repro.core.lbl.server.LblServer.process_many`, and fans the
        per-request results (or isolated errors) back out.

        Args:
            batch: The window's entries.
            reason: Why the window closed — ``"size"`` (hit ``max_batch``),
                ``"timer"`` (the window timer lapsed), or ``"explicit"``
                (a direct call).  Counted per reason and recorded per
                flush, so saturation tooling can tell a size-bound window
                from a timer-bound one.
        """
        if not batch:
            return
        with self._flush_lock:
            guard: ContextManager = (
                self._lock_keys(
                    sorted({entry.request.encoded_key for entry in batch})
                )
                if self._lock_keys is not None
                else nullcontext()
            )
            with guard:
                results = self.lbl.process_many(
                    [entry.request for entry in batch],
                    rows=[entry.row for entry in batch],
                )
            for entry, result in zip(batch, results):
                if isinstance(result, OrtoaError):
                    entry.error = result
                else:
                    entry.result = result
                self._finish(entry)
            if _obs.enabled:
                REGISTRY.counter("lbl.server.windows").inc()
                REGISTRY.counter("lbl.server.coalesced").inc(len(batch))
                REGISTRY.counter(f"lbl.server.flush.{reason}").inc()
                REGISTRY.gauge("lbl.server.last_window").set(len(batch))
                # Flush-reason split + window fill: a saturated server
                # flushes on size with full windows; an idle one flushes on
                # timer with near-empty windows.  Doctor reads the ratio.
                REGISTRY.gauge("lbl.server.window_fill").set(
                    len(batch) / self.max_batch
                )
                # Window shape is payload-independent by construction:
                # reason and fill depend on arrival timing, never on ops.
                RECORDER.record(
                    "server.window",
                    reason=reason,
                    window=len(batch),
                    max_batch=self.max_batch,
                )

    @staticmethod
    def _finish(entry: _Entry) -> None:
        entry.done.set()
        if entry.on_done is not None:
            entry.on_done(entry)


__all__ = [
    "ServerAccessCoalescer",
    "DEFAULT_WINDOW_SECONDS",
    "DEFAULT_MAX_BATCH",
]
