"""Proxy-side label cache for LBL-ORTOA.

The labels stored at the server under counter ``ct`` are exactly the "new"
labels the proxy derived when it executed access ``ct`` — so on the *next*
access to the same key the proxy can skip re-deriving the whole "old" side
of its table build.  :class:`LabelCache` keeps those label sets in a bounded
LRU keyed by ``(key, counter)``.  Entries can further carry the *following*
epoch's labels (:meth:`LabelCache.attach_prefetch`, derived during
``finalize`` while the previous response is being settled), at which point a
warm ``prepare`` performs no label derivation at all.

Correctness hinges on the epoch key: an entry is only ever consumed by the
access whose old-label epoch matches it exactly, and the proxy invalidates
entries whenever counters move outside the normal ``ct → ct + 1`` flow
(:meth:`~repro.core.lbl.proxy.LblProxy.force_counter` /
:meth:`~repro.core.lbl.proxy.LblProxy.restore_counters`).

Entries can additionally carry the AEAD key schedules of their labels
(:meth:`LabelCache.attach_schedules`).  Deriving those is deferred to
``finalize`` — after the request is already on the wire — so a pipelined
deployment pays for them during the network round trip instead of on the
request-build critical path.

The cache is thread-safe: the parallel prepare engine consults it from
worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.crypto import aead
from repro.errors import ConfigurationError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.metrics import REGISTRY

#: Default byte budget used when a cache is requested without an explicit
#: entry count (``LabelCache.from_bytes``).
DEFAULT_LABEL_CACHE_BYTES = 4 * 1024 * 1024


@dataclass(slots=True)
class LabelCacheEntry:
    """One cached epoch: everything the next access can reuse.

    Attributes:
        labels: ``num_groups`` rows of ``2^y`` candidate labels.
        offsets: Per-group point-and-permute offsets (``None`` when the
            deployment does not use point-and-permute).
        schedules: Per-label AEAD ``(ipad_block, opad_block)`` key schedules,
            aligned with ``labels``; attached lazily by
            :meth:`LabelCache.attach_schedules`.
        next_labels: Prefetched candidate labels of the *following* epoch
            (``counter + 1``) — the "new" side of the next access's table
            build; attached by :meth:`LabelCache.attach_prefetch` during
            ``finalize``.
        next_offsets: Prefetched point-and-permute offsets of the following
            epoch, alongside ``next_labels``.
        keyed: The vector pipeline's form of ``schedules``: one
            :func:`repro.crypto.aead.keyed_states` pair per label (pad
            blocks pre-absorbed into ``hashlib`` states), stored *flat* in
            group-major order — exactly the shape ``encrypt_many(keyed=…)``
            consumes, so a warm prepare performs no per-entry flattening.
        nonces: Flat (group-major) prefetched nonces for the next access's
            table encryption, attached with ``keystreams``.
        keystreams: Flat prefetched AEAD keystream blocks bound to
            ``nonces`` — payload-independent, so deriving them early leaks
            nothing about the next operation's type.  With these attached, a
            warm vector ``prepare`` pays only the tag MAC per table entry.
        labels_blob: ``labels`` joined group-major into one ``bytes`` —
            lets the matrix decode in
            :meth:`~repro.crypto.labels.LabelCodec.decode_from_candidates`
            skip its join.  Vector pipeline only.
        next_labels_blob: ``next_labels`` joined the same way; a warm
            prepare views it as the payload matrix without touching the
            2560 individual label objects.
    """

    labels: list[list[bytes]]
    offsets: list[int] | None = None
    schedules: list[list[tuple[bytes, bytes]]] | None = field(default=None)
    next_labels: list[list[bytes]] | None = field(default=None)
    next_offsets: list[int] | None = field(default=None)
    keyed: "list[tuple] | None" = field(default=None)
    nonces: list[bytes] | None = field(default=None)
    keystreams: list[bytes] | None = field(default=None)
    labels_blob: bytes | None = field(default=None)
    next_labels_blob: bytes | None = field(default=None)


class LabelCache:
    """Bounded LRU of per-``(key, counter)`` label sets.

    Args:
        entries: Maximum cached epochs.  Use :meth:`from_bytes` to size the
            bound from a byte budget instead.
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ConfigurationError("label cache needs at least 1 entry")
        self.capacity = entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], LabelCacheEntry] = OrderedDict()

    @staticmethod
    def entry_bytes(
        num_groups: int, table_size: int, label_len: int, with_schedules: bool = True
    ) -> int:
        """Approximate in-memory size of one cached epoch.

        Counts the epoch's labels, their AEAD key schedules (two 64-byte pad
        blocks, or the equivalent keyed states, each), the prefetched
        nonce + keystream block per label, and the prefetched next-epoch
        labels.
        """
        per_label = 2 * label_len + (128 + 44 if with_schedules else 0)
        return num_groups * (table_size * per_label + 16)

    @classmethod
    def from_bytes(
        cls,
        num_groups: int,
        table_size: int,
        label_len: int,
        budget_bytes: int = DEFAULT_LABEL_CACHE_BYTES,
    ) -> "LabelCache":
        """A cache bounded so its payload fits ``budget_bytes``."""
        if budget_bytes < 1:
            raise ConfigurationError("label cache byte budget must be positive")
        per_entry = cls.entry_bytes(num_groups, table_size, label_len)
        return cls(max(1, budget_bytes // per_entry))

    def __len__(self) -> int:
        return len(self._entries)

    def take(self, key: str, counter: int) -> LabelCacheEntry | None:
        """Remove and return the entry for ``(key, counter)``, if cached.

        Consuming semantics: an epoch's labels are needed by exactly one
        access (the one that replaces them), so a hit also frees the slot.
        """
        with self._lock:
            entry = self._entries.pop((key, counter), None)
        if entry is None:
            self.misses += 1
            if _obs.enabled:
                REGISTRY.counter("lbl.proxy.label_cache.misses").inc()
                _ledger.add_op("cache.misses")
        else:
            self.hits += 1
            if _obs.enabled:
                REGISTRY.counter("lbl.proxy.label_cache.hits").inc()
                _ledger.add_op("cache.hits")
        return entry

    def peek(self, key: str, counter: int) -> LabelCacheEntry | None:
        """The entry for ``(key, counter)`` without consuming or counting it."""
        with self._lock:
            return self._entries.get((key, counter))

    def peek_many(
        self, slots: "list[tuple[str, int]]"
    ) -> "list[LabelCacheEntry | None]":
        """Peek a whole window of ``(key, counter)`` slots in one lock hold.

        The coalescing stage routes each window entry cold (fused
        derivation) or warm (cached epoch) before flushing; probing the
        batch under a single lock acquisition keeps that routing decision
        atomic with respect to concurrent ``put``/``take`` calls and avoids
        ``len(window)`` lock round trips on the flush path.  Like
        :meth:`peek`, this neither consumes entries nor counts hits/misses.
        """
        with self._lock:
            return [self._entries.get(slot) for slot in slots]

    def put(self, key: str, counter: int, entry: LabelCacheEntry) -> None:
        """Insert (or refresh) an epoch, evicting the LRU entry when full."""
        evicted = 0
        with self._lock:
            slot = (key, counter)
            self._entries[slot] = entry
            self._entries.move_to_end(slot)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            occupancy = len(self._entries)
        if _obs.enabled:
            if evicted:
                REGISTRY.counter("lbl.proxy.label_cache.evictions").inc(evicted)
            REGISTRY.gauge("lbl.proxy.label_cache.occupancy").set(occupancy)

    def attach_schedules(self, key: str, counter: int, *, keyed: bool = False) -> bool:
        """Precompute AEAD key schedules for a cached epoch's labels.

        Returns True if an entry was found and (now) carries schedules.
        Called from ``finalize`` so the derivation happens off the
        request-build critical path; the next access's table encryption then
        skips its per-entry key schedule entirely.

        Args:
            keyed: Attach :func:`repro.crypto.aead.keyed_states` objects
                (the vector pipeline's faster form) instead of pad-block
                pairs.
        """
        with self._lock:
            entry = self._entries.get((key, counter))
        if entry is None:
            return False
        if keyed:
            if entry.keyed is None:
                derive_keyed = aead.keyed_states
                entry.keyed = [
                    derive_keyed(label) for row in entry.labels for label in row
                ]
        elif entry.schedules is None:
            derive = aead.key_schedule
            entry.schedules = [[derive(label) for label in row] for row in entry.labels]
        return True

    def attach_keystreams(self, key: str, counter: int) -> bool:
        """Prefetch AEAD nonces + keystream blocks for a cached epoch.

        Keystream blocks depend only on ``(label, nonce)`` — not on the
        payload and therefore not on the next operation's type — so
        ``finalize`` can derive them during the idle window after a
        response.  The next access's :meth:`take` hit then hands them to
        ``encrypt_many(..., keystreams=…)``, leaving only the tag MAC on
        the prepare critical path.  Implies keyed schedules (attached first
        if missing).  Returns True if the entry was still cached.
        """
        with self._lock:
            entry = self._entries.get((key, counter))
        if entry is None:
            return False
        if entry.keyed is None:
            # Fused path: keyed states, nonces, and keystream blocks in one
            # loop over the labels (aead.prefetch_table) — the common case,
            # since finalize attaches everything at once.
            entry.keyed, entry.nonces, entry.keystreams = aead.prefetch_table(
                [label for row in entry.labels for label in row]
            )
        elif entry.keystreams is None:
            entry.nonces, entry.keystreams = aead.prefetch_keystreams(entry.keyed)
        return True

    def attach_prefetch(
        self,
        key: str,
        counter: int,
        next_labels: list[list[bytes]],
        next_offsets: list[int] | None,
        *,
        next_labels_blob: bytes | None = None,
    ) -> bool:
        """Attach the following epoch's labels/offsets to a cached entry.

        Labels are a deterministic function of ``(key, counter)``, so the
        proxy can derive epoch ``counter + 1`` as soon as epoch ``counter``
        is settled — ``finalize`` does exactly that, off the one-round-trip
        critical path.  A later :meth:`take` hit then serves *both* sides of
        the table build.  The vector pipeline additionally passes the labels
        pre-joined as ``next_labels_blob`` so the warm prepare can view them
        as a numpy payload matrix.  Returns True if the entry was still
        cached.
        """
        with self._lock:
            entry = self._entries.get((key, counter))
            if entry is None:
                return False
            entry.next_labels = next_labels
            entry.next_offsets = next_offsets
            entry.next_labels_blob = next_labels_blob
        return True

    def invalidate_key(self, key: str) -> int:
        """Drop every cached epoch of ``key``; returns how many were dropped."""
        with self._lock:
            stale = [slot for slot in self._entries if slot[0] == key]
            for slot in stale:
                del self._entries[slot]
        if stale and _obs.enabled:
            REGISTRY.counter("lbl.proxy.label_cache.invalidations").inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (hit/miss totals are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


__all__ = ["LabelCache", "LabelCacheEntry", "DEFAULT_LABEL_CACHE_BYTES"]
