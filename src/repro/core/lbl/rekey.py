"""Master-key rotation for LBL-ORTOA deployments.

Long-lived deployments must be able to retire a master secret (operator
churn, suspected exposure, compliance).  In LBL-ORTOA everything the server
stores is derived from the master key's PRFs, so rotation means re-encoding
the entire database.  :func:`rekey` does it with the tools the protocol
already has:

1. **Drain** — an oblivious *read* of every key through the old deployment
   recovers every plaintext value at the proxy (and, per §5.4, verifies
   integrity of the whole database in passing).
2. **Re-encode** — a fresh deployment under the new keychain is initialized
   with the recovered values; every encoded key and every label changes.

The server observes a full scan followed by a bulk load — unavoidable for a
full rotation and independent of the data, so nothing new leaks.  The scan
is made of ordinary type-oblivious accesses, so even during rotation the
server cannot distinguish it from application reads (or writes).
"""

from __future__ import annotations

import random

from repro.core.lbl import LblOrtoa
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError


def rekey(
    old: LblOrtoa,
    new_keychain: KeyChain | None = None,
    rng: random.Random | None = None,
) -> LblOrtoa:
    """Rotate a deployment onto a fresh master key.

    Args:
        old: The live deployment to drain.  It remains functional afterwards
            (rotation must be able to roll back until cut-over), but callers
            should retire it once the new deployment is serving.
        new_keychain: Key material for the new deployment; generated fresh
            when omitted.
        rng: Table-shuffle randomness for the new deployment.

    Returns:
        A new :class:`LblOrtoa` holding the same logical contents under
        entirely new server-side encodings.

    Raises:
        ConfigurationError: if the new keychain equals the old one (that
            would be a no-op masquerading as a rotation).
        TamperDetectedError: propagated from the drain if any stored label
            fails verification — rotation doubles as an integrity audit.
    """
    new_keychain = new_keychain or KeyChain(label_bits=old.config.label_bits)
    if new_keychain.encode_key("probe") == old.keychain.encode_key("probe"):
        raise ConfigurationError("new keychain must differ from the old one")

    recovered = {key: old.read(key) for key in sorted(old.proxy.counters())}
    replacement = LblOrtoa(old.config, keychain=new_keychain, rng=rng)
    replacement.initialize(recovered)
    return replacement


__all__ = ["rekey"]
