"""The untrusted storage server of LBL-ORTOA (paper §5.2 step 2, §10.2).

Per group the server holds exactly one secret label (plus, under
point-and-permute, the slot index to open next).  On receiving a request it
either:

* **base protocol** — tries every ciphertext in the group's table; the
  authenticated encryption guarantees exactly one opens (the one keyed by
  its stored label), and

* **point-and-permute** — decrypts only the slot its stored index names,
  halving (for y=1; quartering for y=2) server computation, exactly the
  §10.2 optimization.

Either way the decrypted payload becomes the group's new stored label, so
*every* access rewrites storage — the server cannot distinguish a read from
a write by watching its own state.

:meth:`LblServer.process_many` is the fused window path behind the
server-side access coalescer (:mod:`repro.core.lbl.server_coalesce`): a
window of concurrent requests becomes exactly one storage multi-get, one
window-wide :func:`repro.crypto.aead.open_many` (lane-engine eligible once
the window reaches the calibrated threshold), and one multi-put of the
rotated labels — with per-request error isolation and byte-exact ledger
attribution, so the fused path is observationally identical to a
sequential ``process`` loop.

When :mod:`repro.obs` capture is enabled, each request — fused or not —
emits a :data:`SERVER_SPAN` span describing everything this component could
observe about it — table shapes, ciphertext bytes, decryption attempts,
storage rewrites.  The obliviousness auditor (:mod:`repro.obs.audit`)
consumes exactly this stream: if the span attributes distinguish reads from
writes, the protocol leaks.  Spans and ``lbl.server.*`` counters are
emitted on error paths too (a failed decrypt is an observation like any
other), with the same attribute set plus an ``error`` string whose
presence is operation-independent.
"""

from __future__ import annotations

from repro.core.base import OpCounts
from repro.core.messages import LblAccessRequest, LblAccessResponse
from repro.crypto import aead
from repro.crypto.labels import StoredLabel
from repro.errors import ConfigurationError, OrtoaError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.storage.kv import KeyValueStore
from repro.core.lbl.proxy import DECRYPT_INDEX_BYTES

#: Span name of the per-request server-side observation record.
SERVER_SPAN = "lbl.server.process"


class LblServer:
    """Stores per-group labels and applies encryption tables obliviously."""

    def __init__(self, point_and_permute: bool = False) -> None:
        self.point_and_permute = point_and_permute
        self.store: KeyValueStore[list[StoredLabel]] = KeyValueStore("lbl-server")

    def load(self, encoded_key: bytes, labels: list[StoredLabel]) -> None:
        """Bulk-load one object's labels at initialization."""
        if self.point_and_permute and any(sl.decrypt_index is None for sl in labels):
            raise ProtocolError("point-and-permute server needs decrypt indices")
        self.store.put_new(encoded_key, labels)

    def _commit(self, encoded_key: bytes, updated: list[StoredLabel]) -> int:
        """Persist the rotated labels; returns how many labels were rewritten.

        Split out so test doubles can model a *leaky* server that skips the
        rewrite — the behaviour the obliviousness auditor must flag.
        """
        self.store.put(encoded_key, updated)
        return len(updated)

    def _commit_many(
        self, items: list[tuple[bytes, list[StoredLabel]]]
    ) -> list[int]:
        """Persist a window's rotated labels in one storage multi-put."""
        self.store.put_many(items)
        return [len(updated) for _key, updated in items]

    def _designated_pairs(
        self, request: LblAccessRequest, stored: list[StoredLabel]
    ) -> tuple[list[bytes], list[bytes]]:
        """Point-and-permute: each group's designated (label, ciphertext)."""
        pairs_keys: list[bytes] = []
        pairs_cts: list[bytes] = []
        for group_index, (table, current) in enumerate(zip(request.tables, stored)):
            slot = current.decrypt_index
            if slot is None or slot >= len(table):
                raise ProtocolError(f"bad decrypt index at group {group_index}")
            pairs_keys.append(current.label)
            pairs_cts.append(table[slot])
        return pairs_keys, pairs_cts

    @staticmethod
    def _rotated(payload: bytes) -> StoredLabel:
        """Decode an opened point-and-permute payload into the next label."""
        if len(payload) <= DECRYPT_INDEX_BYTES:
            raise ProtocolError("point-and-permute payload too short")
        return StoredLabel(payload[:-DECRYPT_INDEX_BYTES], payload[-1])

    def _emit_telemetry(
        self,
        span,
        request: LblAccessRequest,
        *,
        decrypts: int,
        failed: int,
        slot_hits: int,
        opened: int,
        rewritten: int,
        error: str | None = None,
    ) -> None:
        """Finish one request's server-side observation record.

        Shared by the sequential and fused paths so both emit byte-identical
        span attributes and counters — including on error paths, where the
        only extra attribute is the (operation-independent) ``error``.
        """
        if span is None:
            return
        attributes = dict(
            # The encoded key is already the server's storage key, so
            # recording its prefix adds no observation power — but it
            # lets the auditor pair spans with requests even when a
            # worker pool processes them out of submission order.
            key_fingerprint=request.encoded_key.hex()[:16],
            groups=len(request.tables),
            table_entries=sum(len(table) for table in request.tables),
            ciphertext_bytes=sum(
                len(entry) for table in request.tables for entry in table
            ),
            decrypt_attempts=decrypts,
            failed_decrypts=failed,
            opened_labels=opened,
            labels_rewritten=rewritten,
            storage_writes=1 if rewritten else 0,
            point_and_permute=self.point_and_permute,
        )
        if error is not None:
            attributes["error"] = error
        span.set_attributes(**attributes)
        TRACER.end(span)
        REGISTRY.counter("lbl.server.requests").inc()
        REGISTRY.counter("lbl.server.decrypt_attempts").inc(decrypts)
        REGISTRY.counter("lbl.server.failed_decrypts").inc(failed)
        REGISTRY.counter("lbl.server.slot_hits").inc(slot_hits)
        REGISTRY.counter("lbl.server.labels_rewritten").inc(rewritten)

    def process(self, request: LblAccessRequest) -> tuple[LblAccessResponse, OpCounts]:
        """Open one entry per group, update stored labels, return the labels."""
        span = TRACER.start_span(SERVER_SPAN) if _obs.enabled else None
        opened: list[bytes] = []
        decrypts = 0
        failed = 0
        slot_hits = 0
        rewritten = 0
        error: str | None = None
        try:
            stored = self.store.get(request.encoded_key)
            if len(request.tables) != len(stored):
                raise ProtocolError(
                    f"table count {len(request.tables)} != stored groups {len(stored)}"
                )
            updated: list[StoredLabel] = []
            if self.point_and_permute:
                # Every group opens exactly its designated slot, so the whole
                # request collapses to one (label, ciphertext) pair per group —
                # batched through open_many (lane-engine eligible), with verdicts
                # and attempt counts identical to a per-group try_decrypt loop.
                pairs_keys, pairs_cts = self._designated_pairs(request, stored)
                payloads = aead.open_many(pairs_keys, pairs_cts)
                decrypts = len(payloads)
                for group_index, payload in enumerate(payloads):
                    if payload is None:
                        # open_many attempted (and the ledger metered) every
                        # pair, so the failure count covers the whole batch.
                        failed = sum(1 for p in payloads if p is None)
                        raise ProtocolError(
                            f"designated entry failed to open at group {group_index}"
                        )
                    slot_hits += 1
                    current = self._rotated(payload)
                    updated.append(current)
                    opened.append(current.label)
            else:
                for group_index, (table, current) in enumerate(
                    zip(request.tables, stored)
                ):
                    # Batched scan: the stored label's key schedule is computed once
                    # and tried against every entry (same verdicts and attempt
                    # counts as a sequential try_decrypt loop).
                    found = aead.open_any(current.label, table)
                    if found is None:
                        decrypts += len(table)
                        failed += len(table)
                        raise ProtocolError(
                            f"no table entry opened at group {group_index}: "
                            "stored label is stale or corrupt"
                        )
                    slot, new_label = found
                    decrypts += slot + 1
                    failed += slot
                    updated.append(StoredLabel(new_label))
                    opened.append(new_label)
            rewritten = self._commit(request.encoded_key, updated)
            ops = OpCounts(
                kv_ops=2,
                aead_dec=decrypts - failed,
                failed_dec=failed,
            )
            return LblAccessResponse(tuple(opened)), ops
        except Exception as exc:
            error = str(exc)
            raise
        finally:
            self._emit_telemetry(
                span,
                request,
                decrypts=decrypts,
                failed=failed,
                slot_hits=slot_hits,
                opened=len(opened),
                rewritten=rewritten,
                error=error,
            )

    def _process_isolated(
        self, request: LblAccessRequest, row: "_ledger.LedgerRow | None"
    ) -> "tuple[LblAccessResponse, OpCounts] | OrtoaError":
        """One sequential access with its ledger row active, errors captured.

        ``row=None`` *clears* the ambient row for the duration — a
        row-less window-mate must not bill the flushing thread's row.
        """
        token = _ledger.activate(row)
        try:
            return self.process(request)
        except OrtoaError as exc:
            return exc
        finally:
            _ledger.deactivate(token)

    def _process_many_fast(
        self, requests: "list[LblAccessRequest]"
    ) -> "list[tuple[LblAccessResponse, OpCounts] | OrtoaError] | None":
        """Streamlined fused window for the common case, or ``None``.

        Handles point-and-permute windows of distinct, present keys with
        observability disabled — the hot shape at a saturated server, where
        per-window Python bookkeeping is the difference between fused
        dispatch winning and losing.  Structural oddities (repeated keys,
        missing keys, table/slot mismatches) bail out *before* any counted
        storage access so the general path replays the window from scratch;
        per-request open failures are handled inline with the exact errors
        the general path raises, so callers can't tell the paths apart.
        """
        data = self.store._data
        seen: set[bytes] = set()
        window_keys: list[bytes] = []
        pair_keys: list[bytes] = []
        pair_cts: list[bytes] = []
        bounds = [0]
        for request in requests:
            encoded_key = request.encoded_key
            if encoded_key in seen:
                return None
            seen.add(encoded_key)
            stored = data.get(encoded_key)
            if stored is None or len(request.tables) != len(stored):
                return None
            for table, current in zip(request.tables, stored):
                slot = current.decrypt_index
                if slot is None or slot >= len(table):
                    return None
                pair_keys.append(current.label)
                pair_cts.append(table[slot])
            window_keys.append(encoded_key)
            bounds.append(len(pair_keys))
        # The window's one multi-get: the pre-scan above read the same dict,
        # but this is the counted storage access tests assert on.
        self.store.get_many(window_keys)
        payloads = aead.open_many(pair_keys, pair_cts)
        results: "list[tuple[LblAccessResponse, OpCounts] | OrtoaError]" = []
        commits: list[tuple[bytes, list[StoredLabel]]] = []
        index_bytes = DECRYPT_INDEX_BYTES
        # Every request in a window shares the store's group shape, and
        # OpCounts is frozen — one descriptor serves the whole window
        # instead of one dataclass construction per request.
        ops_by_groups: dict[int, OpCounts] = {}
        for index, request in enumerate(requests):
            segment = payloads[bounds[index] : bounds[index + 1]]
            opened: list[bytes] = []
            updated: list[StoredLabel] = []
            failure: OrtoaError | None = None
            for group_index, payload in enumerate(segment):
                if payload is None:
                    failure = ProtocolError(
                        f"designated entry failed to open at group {group_index}"
                    )
                    break
                if len(payload) <= index_bytes:
                    failure = ProtocolError(
                        "point-and-permute payload too short"
                    )
                    break
                label = payload[:-index_bytes]
                updated.append(StoredLabel(label, payload[-1]))
                opened.append(label)
            if failure is not None:
                results.append(failure)
                continue
            commits.append((request.encoded_key, updated))
            num_groups = len(segment)
            ops = ops_by_groups.get(num_groups)
            if ops is None:
                ops = OpCounts(kv_ops=2, aead_dec=num_groups)
                ops_by_groups[num_groups] = ops
            results.append((LblAccessResponse(tuple(opened)), ops))
        if commits:
            self._commit_many(commits)
        return results

    def process_many(
        self,
        requests: "list[LblAccessRequest]",
        rows: "list[_ledger.LedgerRow | None] | None" = None,
    ) -> "list[tuple[LblAccessResponse, OpCounts] | OrtoaError]":
        """Process a window of concurrent requests in one fused dispatch.

        Returns a list parallel to ``requests`` where each position holds
        either that request's ``(response, ops)`` or the
        :class:`~repro.errors.OrtoaError` it failed with — per-request error
        isolation, so one corrupt request cannot poison its window-mates.

        Under point-and-permute the window collapses to exactly one storage
        multi-get, one window-wide :func:`repro.crypto.aead.open_many` over
        every request's designated pairs (lane-engine eligible once the
        window reaches the calibrated threshold), and one multi-put of the
        rotated labels.  Two documented exceptions keep correctness exact:

        * **same-key followers** — the second and later requests for one
          key ("tail") consume the labels their predecessor installs, so
          they chain sequentially *after* the fused commit, preserving
          label-rotation order;
        * **requests that cannot join the fused dispatch** (missing key,
          base protocol) — replayed through sequential :meth:`process`,
          which reproduces the exact error, span, and counter behaviour.

        The fused crypto runs with no ambient ledger row (the registry still
        meters the real fused invocation once); each request's row is then
        credited its closed-form share of the attempt counts — the same
        split-attribution pattern as the client-side prepare coalescer — so
        per-request ledger rows are byte-exact regardless of window shape.

        Args:
            requests: The window, in arrival order (meaningful for
                repeated keys).
            rows: Optional per-request ledger rows (parallel positions);
                fused crypto and tail processing are attributed per row.
                A ``None`` position credits no row at all (registry-only) —
                an untracked window-mate must never leak its share into the
                flushing thread's ambient row.  Omitting ``rows`` entirely
                attributes every request to the caller's ambient row,
                matching a sequential ``process`` loop.
        """
        if rows is not None and len(rows) != len(requests):
            raise ConfigurationError("rows must parallel requests")
        if requests and self.point_and_permute and not _obs.enabled:
            # With capture off there are no spans, counters, or ledger rows
            # to attribute, so the window can take the streamlined lane
            # (rows are ignored exactly as the general path would ignore
            # them: crediting is gated on capture being enabled).
            fast = self._process_many_fast(requests)
            if fast is not None:
                return fast
        if rows is not None:
            row_list: "list[_ledger.LedgerRow | None]" = list(rows)
        else:
            ambient = _ledger.current_row()
            row_list = [ambient] * len(requests)
        results: "list[tuple[LblAccessResponse, OpCounts] | OrtoaError | None]" = [
            None
        ] * len(requests)
        if not requests:
            return []
        if not self.point_and_permute:
            # The base protocol scans tables with per-group open_any; there
            # is no designated-slot structure to fuse.  Keep the window
            # semantics (isolation, row attribution) with sequential opens.
            for index, request in enumerate(requests):
                results[index] = self._process_isolated(request, row_list[index])
            return results  # type: ignore[return-value]

        front: list[int] = []
        tail: list[int] = []
        seen: set[bytes] = set()
        for index, request in enumerate(requests):
            if request.encoded_key in seen:
                tail.append(index)
            else:
                seen.add(request.encoded_key)
                front.append(index)

        for index in front:
            if requests[index].encoded_key not in self.store:
                results[index] = self._process_isolated(
                    requests[index], row_list[index]
                )
        present = [index for index in front if results[index] is None]
        stored_lists = (
            self.store.get_many([requests[index].encoded_key for index in present])
            if present
            else []
        )

        fused: list[int] = []
        segments: dict[int, tuple[int, int]] = {}
        pair_keys: list[bytes] = []
        pair_cts: list[bytes] = []
        for index, stored in zip(present, stored_lists):
            request = requests[index]
            try:
                if len(request.tables) != len(stored):
                    raise ProtocolError(
                        f"table count {len(request.tables)} != "
                        f"stored groups {len(stored)}"
                    )
                keys_i, cts_i = self._designated_pairs(request, stored)
            except OrtoaError as exc:
                span = TRACER.start_span(SERVER_SPAN) if _obs.enabled else None
                self._emit_telemetry(
                    span,
                    request,
                    decrypts=0,
                    failed=0,
                    slot_hits=0,
                    opened=0,
                    rewritten=0,
                    error=str(exc),
                )
                results[index] = exc
                continue
            segments[index] = (len(pair_keys), len(pair_keys) + len(keys_i))
            pair_keys.extend(keys_i)
            pair_cts.extend(cts_i)
            fused.append(index)

        payloads: "list[bytes | None]" = []
        if pair_keys:
            # One window-wide open.  The ambient row is cleared so the fused
            # invocation meters the registry exactly once; per-request shares
            # are credited closed-form below.
            token = _ledger.activate(None)
            try:
                payloads = aead.open_many(pair_keys, pair_cts)
            finally:
                _ledger.deactivate(token)

        commits: list[tuple[bytes, list[StoredLabel]]] = []
        pending: list[tuple[int, int, int, int, list[bytes]]] = []
        for index in fused:
            request = requests[index]
            start, end = segments[index]
            segment = payloads[start:end]
            decrypts = len(segment)
            failures = sum(1 for payload in segment if payload is None)
            if _obs.enabled and row_list[index] is not None:
                # Closed-form attribution of the fused open: this request's
                # pairs were all attempted, whatever its window-mates did.
                _ledger.credit_op(
                    "aead.decrypts", decrypts - failures, row_list[index]
                )
                _ledger.credit_op(
                    "aead.decrypt_failures", failures, row_list[index]
                )
            slot_hits = 0
            opened: list[bytes] = []
            updated: list[StoredLabel] = []
            failure: OrtoaError | None = None
            try:
                for group_index, payload in enumerate(segment):
                    if payload is None:
                        raise ProtocolError(
                            f"designated entry failed to open at group {group_index}"
                        )
                    slot_hits += 1
                    current = self._rotated(payload)
                    updated.append(current)
                    opened.append(current.label)
            except OrtoaError as exc:
                failure = exc
            if failure is not None:
                span = TRACER.start_span(SERVER_SPAN) if _obs.enabled else None
                self._emit_telemetry(
                    span,
                    request,
                    decrypts=decrypts,
                    failed=failures,
                    slot_hits=slot_hits,
                    opened=len(opened),
                    rewritten=0,
                    error=str(failure),
                )
                results[index] = failure
                continue
            commits.append((request.encoded_key, updated))
            pending.append((index, decrypts, failures, slot_hits, opened))

        rewritten_counts = self._commit_many(commits) if commits else []
        for (index, decrypts, failures, slot_hits, opened), rewritten in zip(
            pending, rewritten_counts
        ):
            span = TRACER.start_span(SERVER_SPAN) if _obs.enabled else None
            self._emit_telemetry(
                span,
                requests[index],
                decrypts=decrypts,
                failed=failures,
                slot_hits=slot_hits,
                opened=len(opened),
                rewritten=rewritten,
            )
            results[index] = (
                LblAccessResponse(tuple(opened)),
                OpCounts(
                    kv_ops=2,
                    aead_dec=decrypts - failures,
                    failed_dec=failures,
                ),
            )

        # Same-key followers consume the labels the fused commit installed;
        # arrival order within the tail preserves each key's rotation chain.
        for index in tail:
            results[index] = self._process_isolated(requests[index], row_list[index])
        return results  # type: ignore[return-value]


__all__ = ["LblServer", "SERVER_SPAN"]
