"""The untrusted storage server of LBL-ORTOA (paper §5.2 step 2, §10.2).

Per group the server holds exactly one secret label (plus, under
point-and-permute, the slot index to open next).  On receiving a request it
either:

* **base protocol** — tries every ciphertext in the group's table; the
  authenticated encryption guarantees exactly one opens (the one keyed by
  its stored label), and

* **point-and-permute** — decrypts only the slot its stored index names,
  halving (for y=1; quartering for y=2) server computation, exactly the
  §10.2 optimization.

Either way the decrypted payload becomes the group's new stored label, so
*every* access rewrites storage — the server cannot distinguish a read from
a write by watching its own state.
"""

from __future__ import annotations

from repro.core.base import OpCounts
from repro.core.messages import LblAccessRequest, LblAccessResponse
from repro.crypto import aead
from repro.crypto.labels import StoredLabel
from repro.errors import ProtocolError
from repro.storage.kv import KeyValueStore
from repro.core.lbl.proxy import DECRYPT_INDEX_BYTES


class LblServer:
    """Stores per-group labels and applies encryption tables obliviously."""

    def __init__(self, point_and_permute: bool = False) -> None:
        self.point_and_permute = point_and_permute
        self.store: KeyValueStore[list[StoredLabel]] = KeyValueStore("lbl-server")

    def load(self, encoded_key: bytes, labels: list[StoredLabel]) -> None:
        """Bulk-load one object's labels at initialization."""
        if self.point_and_permute and any(sl.decrypt_index is None for sl in labels):
            raise ProtocolError("point-and-permute server needs decrypt indices")
        self.store.put_new(encoded_key, labels)

    def process(self, request: LblAccessRequest) -> tuple[LblAccessResponse, OpCounts]:
        """Open one entry per group, update stored labels, return the labels."""
        stored = self.store.get(request.encoded_key)
        if len(request.tables) != len(stored):
            raise ProtocolError(
                f"table count {len(request.tables)} != stored groups {len(stored)}"
            )
        opened: list[bytes] = []
        updated: list[StoredLabel] = []
        decrypts = 0
        failed = 0
        for group_index, (table, current) in enumerate(zip(request.tables, stored)):
            if self.point_and_permute:
                slot = current.decrypt_index
                if slot is None or slot >= len(table):
                    raise ProtocolError(f"bad decrypt index at group {group_index}")
                payload = aead.try_decrypt(current.label, table[slot])
                decrypts += 1
                if payload is None:
                    raise ProtocolError(
                        f"designated entry failed to open at group {group_index}"
                    )
                if len(payload) <= DECRYPT_INDEX_BYTES:
                    raise ProtocolError("point-and-permute payload too short")
                new_label = payload[:-DECRYPT_INDEX_BYTES]
                next_slot = payload[-1]
                updated.append(StoredLabel(new_label, next_slot))
                opened.append(new_label)
            else:
                new_label = None
                for entry in table:
                    decrypts += 1
                    payload = aead.try_decrypt(current.label, entry)
                    if payload is not None:
                        new_label = payload
                        break
                    failed += 1
                if new_label is None:
                    raise ProtocolError(
                        f"no table entry opened at group {group_index}: "
                        "stored label is stale or corrupt"
                    )
                updated.append(StoredLabel(new_label))
                opened.append(new_label)
        self.store.put(request.encoded_key, updated)
        ops = OpCounts(
            kv_ops=2,
            aead_dec=decrypts - failed,
            failed_dec=failed,
        )
        return LblAccessResponse(tuple(opened)), ops


__all__ = ["LblServer"]
