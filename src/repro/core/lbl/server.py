"""The untrusted storage server of LBL-ORTOA (paper §5.2 step 2, §10.2).

Per group the server holds exactly one secret label (plus, under
point-and-permute, the slot index to open next).  On receiving a request it
either:

* **base protocol** — tries every ciphertext in the group's table; the
  authenticated encryption guarantees exactly one opens (the one keyed by
  its stored label), and

* **point-and-permute** — decrypts only the slot its stored index names,
  halving (for y=1; quartering for y=2) server computation, exactly the
  §10.2 optimization.

Either way the decrypted payload becomes the group's new stored label, so
*every* access rewrites storage — the server cannot distinguish a read from
a write by watching its own state.

When :mod:`repro.obs` capture is enabled, each ``process()`` call emits a
:data:`SERVER_SPAN` span describing everything this component could observe
about the request — table shapes, ciphertext bytes, decryption attempts,
storage rewrites.  The obliviousness auditor (:mod:`repro.obs.audit`)
consumes exactly this stream: if the span attributes distinguish reads from
writes, the protocol leaks.
"""

from __future__ import annotations

from repro.core.base import OpCounts
from repro.core.messages import LblAccessRequest, LblAccessResponse
from repro.crypto import aead
from repro.crypto.labels import StoredLabel
from repro.errors import ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.storage.kv import KeyValueStore
from repro.core.lbl.proxy import DECRYPT_INDEX_BYTES

#: Span name of the per-request server-side observation record.
SERVER_SPAN = "lbl.server.process"


class LblServer:
    """Stores per-group labels and applies encryption tables obliviously."""

    def __init__(self, point_and_permute: bool = False) -> None:
        self.point_and_permute = point_and_permute
        self.store: KeyValueStore[list[StoredLabel]] = KeyValueStore("lbl-server")

    def load(self, encoded_key: bytes, labels: list[StoredLabel]) -> None:
        """Bulk-load one object's labels at initialization."""
        if self.point_and_permute and any(sl.decrypt_index is None for sl in labels):
            raise ProtocolError("point-and-permute server needs decrypt indices")
        self.store.put_new(encoded_key, labels)

    def _commit(self, encoded_key: bytes, updated: list[StoredLabel]) -> int:
        """Persist the rotated labels; returns how many labels were rewritten.

        Split out so test doubles can model a *leaky* server that skips the
        rewrite — the behaviour the obliviousness auditor must flag.
        """
        self.store.put(encoded_key, updated)
        return len(updated)

    def process(self, request: LblAccessRequest) -> tuple[LblAccessResponse, OpCounts]:
        """Open one entry per group, update stored labels, return the labels."""
        span = TRACER.start_span(SERVER_SPAN) if _obs.enabled else None
        stored = self.store.get(request.encoded_key)
        if len(request.tables) != len(stored):
            raise ProtocolError(
                f"table count {len(request.tables)} != stored groups {len(stored)}"
            )
        opened: list[bytes] = []
        updated: list[StoredLabel] = []
        decrypts = 0
        failed = 0
        slot_hits = 0
        if self.point_and_permute:
            # Every group opens exactly its designated slot, so the whole
            # request collapses to one (label, ciphertext) pair per group —
            # batched through open_many (lane-engine eligible), with verdicts
            # and attempt counts identical to a per-group try_decrypt loop.
            pairs_keys: list[bytes] = []
            pairs_cts: list[bytes] = []
            for group_index, (table, current) in enumerate(
                zip(request.tables, stored)
            ):
                slot = current.decrypt_index
                if slot is None or slot >= len(table):
                    raise ProtocolError(f"bad decrypt index at group {group_index}")
                pairs_keys.append(current.label)
                pairs_cts.append(table[slot])
            payloads = aead.open_many(pairs_keys, pairs_cts)
            decrypts = len(payloads)
            for group_index, payload in enumerate(payloads):
                if payload is None:
                    raise ProtocolError(
                        f"designated entry failed to open at group {group_index}"
                    )
                slot_hits += 1
                if len(payload) <= DECRYPT_INDEX_BYTES:
                    raise ProtocolError("point-and-permute payload too short")
                new_label = payload[:-DECRYPT_INDEX_BYTES]
                next_slot = payload[-1]
                updated.append(StoredLabel(new_label, next_slot))
                opened.append(new_label)
        else:
            for group_index, (table, current) in enumerate(
                zip(request.tables, stored)
            ):
                # Batched scan: the stored label's key schedule is computed once
                # and tried against every entry (same verdicts and attempt
                # counts as a sequential try_decrypt loop).
                found = aead.open_any(current.label, table)
                if found is None:
                    decrypts += len(table)
                    failed += len(table)
                    raise ProtocolError(
                        f"no table entry opened at group {group_index}: "
                        "stored label is stale or corrupt"
                    )
                slot, new_label = found
                decrypts += slot + 1
                failed += slot
                updated.append(StoredLabel(new_label))
                opened.append(new_label)
        rewritten = self._commit(request.encoded_key, updated)
        ops = OpCounts(
            kv_ops=2,
            aead_dec=decrypts - failed,
            failed_dec=failed,
        )
        if span is not None:
            table_entries = sum(len(table) for table in request.tables)
            span.set_attributes(
                # The encoded key is already the server's storage key, so
                # recording its prefix adds no observation power — but it
                # lets the auditor pair spans with requests even when a
                # worker pool processes them out of submission order.
                key_fingerprint=request.encoded_key.hex()[:16],
                groups=len(request.tables),
                table_entries=table_entries,
                ciphertext_bytes=sum(
                    len(entry) for table in request.tables for entry in table
                ),
                decrypt_attempts=decrypts,
                failed_decrypts=failed,
                opened_labels=len(opened),
                labels_rewritten=rewritten,
                storage_writes=1 if rewritten else 0,
                point_and_permute=self.point_and_permute,
            )
            TRACER.end(span)
            REGISTRY.counter("lbl.server.requests").inc()
            REGISTRY.counter("lbl.server.decrypt_attempts").inc(decrypts)
            REGISTRY.counter("lbl.server.failed_decrypts").inc(failed)
            REGISTRY.counter("lbl.server.slot_hits").inc(slot_hits)
            REGISTRY.counter("lbl.server.labels_rewritten").inc(rewritten)
        return LblAccessResponse(tuple(opened)), ops


__all__ = ["LblServer", "SERVER_SPAN"]
