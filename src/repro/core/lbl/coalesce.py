"""Cross-request prepare coalescing for LBL-ORTOA.

The proxy's ``prepare`` is the protocol's throughput ceiling: every access
derives two epochs of labels and encrypts ``2^y`` candidates per group, and
each concurrent client today pays that cost alone — one lane-engine dispatch
per request, mostly 1-wide.  :class:`PrepareCoalescer` is the amortize-
per-batch stage that fixes this (ROADMAP item 2): concurrent ``prepare``
calls enqueue into a bounded **window** (flushed on size or a few-hundred-µs
timer) and the window is prepared as one fused unit —

* label derivation for every cold access fuses into a single
  :meth:`~repro.crypto.labels.LabelCodec.labels_for_epochs` dispatch (or one
  :meth:`~repro.core.lbl.procpool.ProcessCryptoPool.derive_batch` worker
  round trip), so 8 clients' PRF tails fill the 8-wide SHA-256 lanes;
* table encryption for the whole window runs as one
  :meth:`~repro.core.lbl.proxy.LblProxy.prepare_window` ``encrypt_many``
  call.

**Leader/follower protocol.**  The first caller to find no window open
becomes the window's *leader*: it opens the window, waits for it to fill or
for the timer to lapse, swaps the batch out, and runs the flush on its own
thread.  Every later caller is a *follower*: it appends its entry and blocks
on the entry's done-event.  The leader publishes each entry's result (or the
flush's exception — a failed flush never strands a follower) before
returning its own.  Flushes serialize on one lock, which is also what makes
the shared proxy state (counters, cache, base-protocol shuffle RNG) safe
without per-key stripes.

**Equivalence.**  A flushed window produces, per request, exactly what a
sequential ``prepare`` loop over the same requests in the same order would:
same label bytes (fusion is the empty-prefix PRF-context identity — the
hashed messages are equal), same table placement, same op counts, same
counter chains (same-key accesses after the first in a window prepare
sequentially, consuming the cache entry the previous access installed).
GET and PUT contribute identical shapes to a fused batch — derivation
pairs, payload lengths, and ciphertext counts per entry are op-independent
— so coalescing leaks nothing about the mix (audited in
``tests/test_coalesce.py``).

**Clock injection.**  The flush timer reads an injectable
:class:`~repro.obs.clock.Clock`, so timer-window tests drive a
:class:`~repro.obs.clock.FakeClock` instead of sleeping real wall time.
"""

from __future__ import annotations

import threading

from repro.core.base import OpCounts
from repro.core.lbl.proxy import LblProxy
from repro.core.messages import LblAccessRequest
from repro.errors import ConfigurationError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.clock import Clock, WallClock
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER
from repro.types import Request

#: Default flush window in seconds (~200µs): long enough for a burst of
#: concurrent clients to land in one window, short enough to be invisible
#: next to a cold prepare (which runs for milliseconds at paper parameters).
DEFAULT_WINDOW_SECONDS = 0.0002

#: Default size flush threshold — matches the SHA-256 lane width, so a full
#: window fills every lane even when each access contributes one tail chunk.
DEFAULT_MAX_BATCH = 8

#: Real-time cap on each follower-wait inside the leader's timer loop.  The
#: window clock is injectable (and may be fake), so the leader never blocks
#: on it for long stretches of *wall* time — it re-reads the clock at least
#: this often.
_LEADER_POLL_SECONDS = 0.001


class _Entry:
    """One enqueued ``prepare`` call, owned by the window that flushes it."""

    __slots__ = ("request", "row", "done", "result", "error")

    def __init__(self, request: Request, row: "_ledger.LedgerRow | None") -> None:
        self.request = request
        self.row = row
        self.done = threading.Event()
        self.result: "tuple[LblAccessRequest, OpCounts, int] | None" = None
        self.error: BaseException | None = None


class PrepareCoalescer:
    """Fuse concurrent ``prepare`` calls into windowed lane dispatches.

    Args:
        proxy: The trusted proxy whose prepares are coalesced.  Must run the
            batched kernel path.
        window: Flush timer in seconds — the longest a lone request waits
            for company.  ``0`` flushes every window immediately (coalescing
            only what arrived while the previous flush ran).
        max_batch: Size flush threshold; a window with this many entries
            flushes without waiting for the timer.
        procpool: Optional :class:`~repro.core.lbl.procpool.ProcessCryptoPool`
            — cold derivations then fuse into worker batch round trips
            instead of in-process lane dispatches.
        clock: Time source for the flush timer (default
            :class:`~repro.obs.clock.WallClock`); tests inject a
            :class:`~repro.obs.clock.FakeClock`.
    """

    def __init__(
        self,
        proxy: LblProxy,
        *,
        window: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        procpool=None,
        clock: Clock | None = None,
    ) -> None:
        if window < 0:
            raise ConfigurationError("coalesce window must be >= 0 seconds")
        if max_batch < 1:
            raise ConfigurationError("coalesce max_batch must be >= 1")
        if not proxy.batched:
            raise ConfigurationError(
                "prepare coalescing requires the batched proxy path"
            )
        self.proxy = proxy
        self.window = window
        self.max_batch = max_batch
        self.procpool = procpool
        self.clock: Clock = clock if clock is not None else WallClock()
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._pending: "list[_Entry]" = []
        self._window_open = False
        self._full = threading.Event()

    # ------------------------------------------------------------------ #
    # Enqueue side
    # ------------------------------------------------------------------ #

    def prepare(
        self, request: Request, row: "_ledger.LedgerRow | None" = None
    ) -> "tuple[LblAccessRequest, OpCounts, int]":
        """Prepare one access through the current window (blocking).

        Returns the same ``(wire_request, prepare_ops, epoch)`` triple a
        :meth:`~repro.core.lbl.parallel.ParallelPrepareEngine.prepare_batch`
        entry yields.  The caller's ambient ledger row is captured when
        ``row`` is not given, so crediting survives the hop onto the
        leader's thread.
        """
        if row is None:
            row = _ledger.current_row()
        entry = _Entry(request, row)
        with self._lock:
            is_leader = not self._window_open
            if is_leader:
                self._window_open = True
                self._pending = [entry]
                self._full = threading.Event()
            else:
                self._pending.append(entry)
                if len(self._pending) >= self.max_batch:
                    self._full.set()
            full = self._full
        if is_leader:
            self._lead(entry, full)
        else:
            entry.done.wait()
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result

    def _lead(self, entry: _Entry, full: threading.Event) -> None:
        """Run the window this thread opened: wait, swap, flush, publish."""
        opened = self.clock.now()
        while not full.is_set():
            remaining = self.window - (self.clock.now() - opened)
            if remaining <= 0:
                break
            full.wait(min(remaining, _LEADER_POLL_SECONDS))
        reason = "size" if full.is_set() else "timer"
        with self._lock:
            batch = self._pending
            self._pending = []
            self._window_open = False
        try:
            self.flush(batch, reason=reason)
        except BaseException as exc:
            # Never strand a follower: a failed flush raises for everyone.
            for pending in batch:
                if not pending.done.is_set():
                    pending.error = exc
                    pending.done.set()

    def prepare_all(
        self,
        requests: "list[Request]",
        rows: "list[_ledger.LedgerRow | None] | None" = None,
    ) -> "list[tuple[LblAccessRequest, OpCounts, int]]":
        """Prepare a whole known batch as one fused window (no timer).

        Without explicit ``rows`` every entry credits the caller's ambient
        ledger row — the same attribution a sequential ``prepare`` loop on
        this thread would produce.
        """
        ambient = _ledger.current_row() if rows is None else None
        entries = [
            _Entry(request, rows[index] if rows is not None else ambient)
            for index, request in enumerate(requests)
        ]
        self.flush(entries)
        results = []
        for entry in entries:
            if entry.error is not None:
                raise entry.error
            results.append(entry.result)
        return results

    # ------------------------------------------------------------------ #
    # Flush side
    # ------------------------------------------------------------------ #

    def flush(self, batch: "list[_Entry]", reason: str = "explicit") -> None:
        """Prepare every entry of one window, fused, and publish results.

        Routing is payload-independent (it depends only on keys and cache
        state, never on the op): the **first** access of each key is fused —
        derivation batched across the window, tables encrypted in one
        dispatch — while warm entries keep the per-request fast path (a
        cached epoch always wins) and same-key followers prepare
        sequentially after their predecessor so epochs chain.

        Args:
            batch: The window's entries.
            reason: Why the window closed — ``"size"`` (hit ``max_batch``),
                ``"timer"`` (the window timer lapsed), or ``"explicit"``
                (a direct :meth:`prepare_all`/:meth:`flush` call).  Counted
                per reason and recorded per flush, so saturation tooling
                can tell a size-bound window from a timer-bound one.
        """
        if not batch:
            return
        with self._flush_lock:
            try:
                self._flush_inner(batch, reason)
            except BaseException as exc:
                for entry in batch:
                    if not entry.done.is_set():
                        entry.error = exc
                        entry.done.set()
                raise

    def _flush_inner(self, batch: "list[_Entry]", reason: str = "explicit") -> None:
        proxy = self.proxy
        seen_keys: set[str] = set()
        front: "list[_Entry]" = []
        tail: "list[_Entry]" = []
        for entry in batch:
            if entry.request.key in seen_keys:
                tail.append(entry)
            else:
                seen_keys.add(entry.request.key)
                front.append(entry)

        cold: "list[_Entry]" = []
        if proxy.label_cache is not None:
            # One lock hold probes the whole window's cache slots.
            slots = [
                (entry.request.key, proxy.counter(entry.request.key))
                for entry in front
            ]
            cached_entries = proxy.label_cache.peek_many(slots)
        else:
            cached_entries = [None] * len(front)
        for entry, cached in zip(front, cached_entries):
            if cached is None:
                cold.append(entry)
            else:
                self._publish_one(entry)

        if cold:
            pairs = [
                (entry.request.key, proxy.counter(entry.request.key))
                for entry in cold
            ]
            rows = [entry.row for entry in cold]
            label_sets = self._derive_fused(pairs, rows)
            window_entries = [
                (entry.request, sets) for entry, sets in zip(cold, label_sets)
            ]
            for entry, result in zip(
                cold, proxy.prepare_window(window_entries, rows=rows)
            ):
                entry.result = result
                entry.done.set()

        # Same-key followers: their predecessor installed epoch ct+1 in the
        # cache, so these run as warm per-request prepares, in order.
        for entry in tail:
            self._publish_one(entry)

        if _obs.enabled:
            REGISTRY.counter("lbl.coalesce.windows").inc()
            REGISTRY.counter("lbl.coalesce.prepared").inc(len(batch))
            REGISTRY.counter("lbl.coalesce.fused").inc(len(cold))
            REGISTRY.gauge("lbl.coalesce.last_window").set(len(batch))
            # Flush-reason split + window fill: a saturated deployment
            # flushes on size with full windows; an idle one flushes on
            # timer with near-empty windows.  Doctor reads the ratio.
            REGISTRY.counter(f"lbl.coalesce.flush.{reason}").inc()
            REGISTRY.gauge("lbl.coalesce.window_fill").set(
                len(batch) / self.max_batch
            )
            RECORDER.record(
                "coalesce.flush",
                reason=reason,
                window=len(batch),
                fused=len(cold),
                max_batch=self.max_batch,
            )

    def _publish_one(self, entry: _Entry) -> None:
        """Per-request prepare (warm or same-key follower) under its row."""
        token = _ledger.activate(entry.row) if entry.row is not None else None
        try:
            ct = self.proxy.counter(entry.request.key)
            lbl_request, ops = self.proxy.prepare(entry.request)
            entry.result = (lbl_request, ops, ct + 1)
            entry.done.set()
        finally:
            if token is not None:
                _ledger.deactivate(token)

    def _derive_fused(
        self,
        pairs: "list[tuple[str, int]]",
        rows: "list[_ledger.LedgerRow | None]",
    ) -> "list[tuple[list[list[bytes]], list[int] | None, list[list[bytes]], list[int] | None]]":
        """Label sets for the window's cold accesses, one fused dispatch.

        Through the :class:`ProcessCryptoPool` when one is attached (chunked
        at its batch capacity), else in-process through the fused codec
        entry points.  The in-process call runs under **no** ambient row —
        the real PRF meters hit the registry once for the whole fusion —
        and each access's row is then credited its exact per-request share
        (the closed-form ``derivation_cost``, byte-exact by construction),
        so fused rows still sum to registry totals.
        """
        if self.procpool is not None:
            out = []
            step = self.procpool.max_batch
            for base in range(0, len(pairs), step):
                out += self.procpool.derive_batch(
                    pairs[base : base + step], rows=rows[base : base + step]
                )
            return out

        codec = self.proxy.codec
        point_and_permute = self.proxy.config.point_and_permute
        epochs: "list[tuple[str, int]]" = []
        for key, counter in pairs:
            epochs.append((key, counter))
            epochs.append((key, counter + 1))
        token = _ledger.activate(None)
        try:
            tables = codec.labels_for_epochs(epochs)
            offsets = (
                codec.permute_offsets_for_epochs(epochs)
                if point_and_permute
                else None
            )
        finally:
            _ledger.deactivate(token)
        if _obs.enabled:
            for position, (key, counter) in enumerate(pairs):
                row = rows[position]
                if row is None:
                    continue
                old_calls, old_comp = codec.derivation_cost(
                    key, counter, offsets=point_and_permute
                )
                new_calls, new_comp = codec.derivation_cost(
                    key, counter + 1, offsets=point_and_permute
                )
                row.add_op("prf.calls", old_calls + new_calls)
                row.add_op("sha256.compressions", old_comp + new_comp)
        return [
            (
                tables[2 * position],
                offsets[2 * position] if offsets is not None else None,
                tables[2 * position + 1],
                offsets[2 * position + 1] if offsets is not None else None,
            )
            for position in range(len(pairs))
        ]


__all__ = ["PrepareCoalescer", "DEFAULT_WINDOW_SECONDS", "DEFAULT_MAX_BATCH"]
