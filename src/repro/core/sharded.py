"""Sharded, pipelined LBL-ORTOA over real sockets (paper §6.2.4 at scale).

The paper scales ORTOA by partitioning the key space across proxy/server
pairs.  :class:`ShardedLblDeployment` is the networked realization: one
trusted proxy fronting ``N`` independent
:class:`~repro.transport.server.LblTcpServer` shards, with three levers the
in-process :class:`~repro.core.deployment.ShardedDeployment` lacks:

* **routing** — :class:`~repro.storage.sharding.ShardRouter` maps the
  PRF-encoded key to a shard, so the routing tier sees exactly what each
  storage server already sees (no new leakage);
* **batching** — :meth:`access_batch` builds the batch's tables through a
  :class:`~repro.core.lbl.parallel.ParallelPrepareEngine` (``prepare_workers``
  threads; serial by default), splits it into per-shard sub-batches, ships
  them concurrently over pipelined connections, and merges the replies back
  into request order;
* **pipelining** — :meth:`access_pipelined` keeps up to ``pipeline_depth``
  independent single-request frames in flight per deployment instead of
  paying one round trip of dead air per access.

Correctness under pipelining hinges on the same invariant as
:class:`~repro.core.lbl.concurrent.ConcurrentLblProxy`: two in-flight
accesses to one key would both build tables against the same label epoch
and the second would fail to decrypt.  :meth:`access_pipelined` therefore
never submits a request for a key that already has a frame in flight — it
drains the window to that key first.  Within a batch the server processes
sub-requests in order, so repeated keys inside one batch are always safe.

The deployment itself is single-threaded (one proxy, mutable counters);
wrap it in :class:`~repro.core.lbl.concurrent.ConcurrentLblProxy` to serve
many client threads.
"""

from __future__ import annotations

import json
import random
import time
from collections import deque

from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.core.lbl.concurrent import finalize_batch_entries
from repro.core.lbl.parallel import ParallelPrepareEngine
from repro.core.lbl.proxy import LblProxy
from repro.core.messages import LblAccessResponse, LblBatchRequest, LblBatchResponse
from repro.crypto.keys import KeyChain
from repro.errors import BatchPartialFailure, ConfigurationError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.exemplars import EXEMPLARS
from repro.obs.metrics import REGISTRY
from repro.obs.propagate import TraceContext, merge_span_dumps
from repro.obs.recorder import RECORDER, merge_recorder_dumps
from repro.obs.trace import TRACER
from repro.storage.sharding import ShardRouter
from repro.transport.async_client import make_pipelined_client
from repro.transport.server import LOAD_ACK, OBS_DUMP_TAG, OBS_PULL_TAG, pack_load
from repro.types import Request, Response, StoreConfig


class ShardedLblDeployment(OrtoaProtocol):
    """One trusted proxy over ``N`` TCP storage shards, pipelined.

    Args:
        config: Store configuration (``point_and_permute`` must match the
            servers').
        addresses: ``(host, port)`` of each shard's
            :class:`~repro.transport.server.LblTcpServer`.
        keychain: Key material — never leaves this process.
        rng: Table-shuffle randomness.
        pipeline_depth: Default in-flight window of
            :meth:`access_pipelined`.
        pool_size: Sockets per shard.
        timeout: Connect timeout and per-reply wait (seconds).
        transport: ``"thread"`` builds
            :class:`~repro.transport.pipeline.PipelinedLblClient` pools,
            ``"async"`` builds event-loop-backed
            :class:`~repro.transport.async_client.SyncAsyncLblClient`
            pools.  Both expose the same submit/request surface, so every
            access path works over either unmodified.
        prepare_workers: Size of the :meth:`access_batch` table-build pool
            (:class:`~repro.core.lbl.parallel.ParallelPrepareEngine`);
            ``0`` prepares serially on the calling thread.
        prepare_backend: ``"thread"`` (default) or ``"procpool"`` — the
            latter derives labels in a shared
            :class:`~repro.core.lbl.procpool.ProcessCryptoPool` of worker
            processes, overlapping PRF work even under a GIL.
        crypto_backend: Proxy batch-crypto backend — ``"auto"`` (default),
            ``"stdlib"``, or ``"vector"``
            (see :class:`~repro.core.lbl.proxy.LblProxy`).
        coalesce_window: When ``> 0``, every prepare (single accesses,
            pipelined windows, batches) routes through the engine's
            :class:`~repro.core.lbl.coalesce.PrepareCoalescer` with this
            flush timer in seconds — concurrent clients' prepares fuse
            into shared lane dispatches.  ``0`` (default) keeps the
            per-request paths.
        coalesce_batch: Size flush threshold for the coalescing window.

    The server-side counterpart — access window fusion on the untrusted
    store — is configured on the shard servers themselves
    (``server_batch`` / ``server_window`` on
    :class:`~repro.transport.server.LblTcpServer`,
    :class:`~repro.transport.async_server.AsyncLblServer`, and
    :class:`~repro.transport.cluster.ShardCluster`), not here: the client
    needs no changes for its concurrent frames to fuse server-side.
    """

    name = "lbl-ortoa-sharded"
    rounds = 1

    def __init__(
        self,
        config: StoreConfig,
        addresses: list[tuple[str, int]],
        keychain: KeyChain | None = None,
        rng: random.Random | None = None,
        pipeline_depth: int = 8,
        pool_size: int = 1,
        timeout: float = 30.0,
        prepare_workers: int = 0,
        prepare_backend: str = "thread",
        crypto_backend: str = "auto",
        transport: str = "thread",
        coalesce_window: float = 0.0,
        coalesce_batch: int = 8,
    ) -> None:
        super().__init__(config)
        if not addresses:
            raise ConfigurationError("deployment needs at least one shard address")
        if pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        self.keychain = keychain or KeyChain(label_bits=config.label_bits)
        self.proxy = LblProxy(
            config, self.keychain, rng=rng, crypto_backend=crypto_backend
        )
        self.prepare_engine = ParallelPrepareEngine(
            self.proxy,
            workers=prepare_workers,
            backend=prepare_backend,
            coalesce_window=coalesce_window,
            coalesce_batch=coalesce_batch,
        )
        self.router = ShardRouter(len(addresses))
        self.clients = [
            make_pipelined_client(
                address, pool_size=pool_size, timeout=timeout, transport=transport
            )
            for address in addresses
        ]
        self.pipeline_depth = pipeline_depth
        self.timeout = timeout
        self.transport = transport
        self._encoded: dict[str, bytes] = {}
        self.name = f"lbl-ortoa-sharded-x{len(addresses)}"

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        """Storage shards in this deployment."""
        return len(self.clients)

    def encoded_key(self, key: str) -> bytes:
        """The PRF-encoded (server-visible) form of ``key``, cached."""
        encoded = self._encoded.get(key)
        if encoded is None:
            encoded = self.keychain.encode_key(key)
            self._encoded[key] = encoded
        return encoded

    def shard_of(self, key: str) -> int:
        """Which shard serves ``key`` (stable hash of the encoded key)."""
        return self.router.shard_of(self.encoded_key(key))

    def shard_sizes(self) -> list[int]:
        """Keys routed to each shard so far (balance diagnostic)."""
        sizes = [0] * self.num_shards
        for key in self._encoded:
            sizes[self.shard_of(key)] += 1
        return sizes

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close every shard connection and the prepare pool."""
        self.prepare_engine.close()
        for client in self.clients:
            client.close()

    def collect_remote_obs(self) -> list[dict]:
        """Pull every shard's telemetry dump (spans + metrics) over the wire.

        Call before :meth:`close` when the shards are *process-backed*
        (each has its own tracer); merge the result with
        :meth:`merged_spans`.  Thread-backed shards share this process's
        global tracer, so pulling them would duplicate every span — skip
        the call there.
        """
        pending = [
            client.submit(bytes([OBS_PULL_TAG])) for client in self.clients
        ]
        dumps = []
        for future in pending:
            reply = future.result(self.timeout)
            if reply[:1] != bytes([OBS_DUMP_TAG]):
                raise ProtocolError("shard answered obs pull with a non-dump frame")
            dumps.append(json.loads(reply[1:].decode("utf-8")))
        return dumps

    def merged_spans(self, remote_dumps: list[dict] | None = None) -> list[dict]:
        """One span list: this process's spans plus the shards' dumps.

        Remote span ids are rewritten into the local id space and the
        propagated parent links preserved
        (:func:`repro.obs.propagate.merge_span_dumps`), so every
        server-side span ends up a descendant of the client access span
        that caused it.
        """
        remote = [dump.get("spans", []) for dump in (remote_dumps or [])]
        return merge_span_dumps(TRACER.export(), remote)

    def merged_recorder(self, remote_dumps: list[dict] | None = None) -> list[dict]:
        """One flight-recorder timeline: local ring plus the shards' rings.

        Each shard dump's events are tagged ``process="shard-<i>"``
        (:func:`repro.obs.recorder.merge_recorder_dumps`), so a post-mortem
        reads as a single ordered timeline across the whole deployment —
        the shed decision on shard 1 next to the coalescer flush on the
        proxy that preceded it.
        """
        local = [event.to_dict() for event in RECORDER.events()]
        remote = [dump.get("recorder", {}) for dump in (remote_dumps or [])]
        return merge_recorder_dumps(local, remote)

    def __enter__(self) -> "ShardedLblDeployment":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #

    def initialize(self, records: dict[str, bytes]) -> None:
        """Bulk-load records, pipelining the LOAD frames across all shards."""
        for key in records:
            self.encoded_key(key)  # prime the routing cache for shard_sizes()
        pending = []
        for encoded_key, labels in self.proxy.initial_records(records):
            shard = self.router.shard_of(encoded_key)
            future = self.clients[shard].submit(pack_load(encoded_key, labels))
            pending.append(future)
        for future in pending:
            if future.result(self.timeout) != LOAD_ACK:
                raise ProtocolError("server rejected a load record")

    def _transcript(
        self,
        request: Request,
        proxy_ops: OpCounts,
        finalize_ops: OpCounts,
        request_bytes: int,
        reply_bytes: int,
        value: bytes,
    ) -> AccessTranscript:
        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy-build-tables", "proxy", proxy_ops),
                PhaseRecord("server-remote", "server", OpCounts(kv_ops=2)),
                PhaseRecord("proxy-decode", "proxy", finalize_ops),
            ),
            round_trips=(RoundTrip(request_bytes, reply_bytes),),
            response=Response(request.key, value),
        )

    def _prepare_timed(self, request: Request):
        """One prepare through the engine, timed when obs is on.

        Routing through
        :meth:`~repro.core.lbl.parallel.ParallelPrepareEngine.prepare_one`
        means single accesses and pipelined windows share the engine's
        configured path — procpool derivation, and (when enabled) the
        coalescing window that fuses concurrent callers.  Returns the
        ``(wire_request, prepare_ops, epoch)`` triple.
        """
        if not _obs.enabled:
            return self.prepare_engine.prepare_one(request)
        start = time.perf_counter()
        built = self.prepare_engine.prepare_one(request)
        REGISTRY.log_histogram("lbl.proxy.prepare.seconds").observe(
            time.perf_counter() - start
        )
        return built

    def access(self, request: Request) -> AccessTranscript:
        """One oblivious access routed to its shard (lockstep).

        With observability enabled the whole access runs under a
        ``sharded.access`` span whose context travels to the shard inside
        the mux frame (the pipelined client propagates the current span
        automatically), so the server-side spans parent under it; the
        client-observed round trip lands in the
        ``sharded.access.roundtrip.seconds`` log histogram.
        """
        if not _obs.enabled:
            shard = self.shard_of(request.key)
            lbl_request, proxy_ops, epoch = self._prepare_timed(request)
            payload = lbl_request.to_bytes()
            reply = self.clients[shard].submit(payload).result(self.timeout)
            response = LblAccessResponse.from_bytes(reply)
            value, finalize_ops = self.proxy.finalize(
                request.key, response, counter=epoch
            )
            return self._transcript(
                request, proxy_ops, finalize_ops, len(payload), len(reply), value
            )
        with TRACER.span("sharded.access") as span:
            shard = self.shard_of(request.key)
            lbl_request, proxy_ops, epoch = self._prepare_timed(request)
            payload = lbl_request.to_bytes()
            # The pipelined client propagates this span's context, so the
            # frame travels with the 25-byte traced mux header; the reply
            # comes back under the plain 9-byte header.  Credit the ambient
            # row (if the caller is tracking) with exactly those bytes.
            _ledger.credit_wire(
                "access", "sent", _ledger.framed_mux_bytes(len(payload), traced=True)
            )
            submitted_at = time.perf_counter()
            reply = self.clients[shard].submit(payload).result(self.timeout)
            roundtrip = time.perf_counter() - submitted_at
            REGISTRY.log_histogram("sharded.access.roundtrip.seconds").observe(
                roundtrip
            )
            _ledger.credit_wire(
                "access",
                "received",
                _ledger.framed_mux_bytes(len(reply), traced=False),
            )
            response = LblAccessResponse.from_bytes(reply)
            value, finalize_ops = self.proxy.finalize(
                request.key, response, counter=epoch
            )
            span.set_attributes(shard=shard, request_bytes=len(payload))
            REGISTRY.counter(f"sharded.shard{shard}.requests").inc()
            # Tail exemplar: if this round trip is in the window's tail the
            # store retains its trace id (the span tree is resolved lazily
            # at export, so the still-open access span is included) and the
            # ambient ledger row, letting ``repro trace`` open this exact
            # request later.
            ambient = _ledger.current_row()
            EXEMPLARS.consider(
                roundtrip,
                trace_id=span.trace_id,
                ledger_row=ambient.snapshot() if ambient is not None else None,
            )
        return self._transcript(
            request, proxy_ops, finalize_ops, len(payload), len(reply), value
        )

    def access_batch(self, requests: list[Request]) -> list[AccessTranscript]:
        """Serve a batch with one concurrent sub-batch per shard.

        Requests are prepared in order (epochs recorded, so repeated keys
        decode correctly), partitioned by shard, shipped concurrently, and
        the per-shard replies are merged back into request order.

        Raises:
            BatchPartialFailure: Some requests failed server-side; see
                :class:`~repro.errors.BatchPartialFailure` for the retry
                contract.
        """
        if not requests:
            raise ProtocolError("batch must contain at least one request")
        if not _obs.enabled:
            return self._access_batch_inner(requests, None)
        with TRACER.span("sharded.batch", size=len(requests)) as batch_span:
            return self._access_batch_inner(
                requests, TraceContext.from_span(batch_span).encode()
            )

    def _access_batch_inner(
        self, requests: list[Request], batch_context: bytes | None
    ) -> list[AccessTranscript]:
        rows: "list[_ledger.LedgerRow] | None" = None
        if _obs.enabled:
            rows = [
                _ledger.LedgerRow(label=f"batched:{request.key}")
                for request in requests
            ]
        prepare_start = time.perf_counter()
        built = self.prepare_engine.prepare_batch(requests, rows=rows)
        if _obs.enabled:
            REGISTRY.log_histogram("lbl.proxy.prepare.seconds").observe(
                time.perf_counter() - prepare_start
            )
        prepared = []
        by_shard: dict[int, list[int]] = {}
        for index, (request, (lbl_request, proxy_ops, epoch)) in enumerate(
            zip(requests, built)
        ):
            prepared.append((request, lbl_request, proxy_ops, epoch))
            by_shard.setdefault(self.shard_of(request.key), []).append(index)

        # Ship every sub-batch before waiting on any reply: the shards
        # work concurrently while this thread blocks on the slowest one.
        shard_futures = {}
        shard_wire_bytes = {}
        for shard, indices in by_shard.items():
            sub_messages = [prepared[i][1].to_bytes() for i in indices]
            sub = LblBatchRequest(tuple(prepared[i][1] for i in indices))
            wire = sub.to_bytes()
            shard_wire_bytes[shard] = len(wire)
            shard_futures[shard] = self.clients[shard].submit(
                wire, trace_context=batch_context
            )
            if rows is not None:
                # Exact attribution: each request owns its length-prefixed
                # sub-message; the shard envelope (batch tag + frame length
                # + traced mux header) goes to the sub-batch's first row, so
                # per-row sums equal the transport totals to the byte.
                envelope = _ledger.framed_mux_bytes(1, traced=True)
                for position, index in enumerate(indices):
                    share = 4 + len(sub_messages[position])
                    if position == 0:
                        share += envelope
                    rows[index].credit_wire("batch", "sent", share)
            if _obs.enabled:
                REGISTRY.counter(f"sharded.shard{shard}.requests").inc(len(indices))
                REGISTRY.gauge("sharded.batch.shards_in_flight").set(
                    len(shard_futures)
                )

        entries: list = [None] * len(requests)
        shares: list[tuple[int, int]] = [(0, 0)] * len(requests)
        for shard, indices in by_shard.items():
            reply = shard_futures[shard].result(self.timeout)
            response = LblBatchResponse.from_bytes(reply)
            if len(response.responses) != len(indices):
                raise ProtocolError("batch response count mismatch")
            share = (
                shard_wire_bytes[shard] // len(indices),
                len(reply) // len(indices),
            )
            for position, (index, entry) in enumerate(zip(indices, response.responses)):
                entries[index] = entry
                shares[index] = share
                if rows is not None:
                    nbytes = 4 + len(entry.to_bytes())
                    if position == 0:
                        # Reply envelope: batch tag + frame length + plain
                        # mux header (server replies untraced).
                        nbytes += _ledger.framed_mux_bytes(1, traced=False)
                    rows[index].credit_wire("batch", "received", nbytes)

        transcripts, failures = finalize_batch_entries(
            self.proxy,
            [(request, proxy_ops, epoch) for request, _, proxy_ops, epoch in prepared],
            tuple(entries),
            shares=shares,
            rows=rows,
        )
        if rows is not None:
            for row in rows:
                _ledger.retire(row)
        if failures:
            raise BatchPartialFailure(failures, transcripts)
        return [transcripts[i] for i in range(len(requests))]

    def access_pipelined(
        self, requests: list[Request], depth: int | None = None
    ) -> list[AccessTranscript]:
        """Serve requests with up to ``depth`` frames in flight at once.

        Unlike :meth:`access_batch` (one frame per shard), every request
        travels as its own multiplexed frame, so the server's worker pool
        processes them in parallel and replies stream back continuously.
        Transcripts are returned in request order.

        When the shard servers run with ``server_batch > 1``, these
        concurrent in-flight frames are exactly what fills the server-side
        access windows (:class:`~repro.core.lbl.server_coalesce.\
ServerAccessCoalescer`): a depth-8 pipeline against a ``server_batch=8``
        shard lands its whole window in one fused ``process_many``.  The
        per-key in-flight exclusion below also guarantees a pipelined
        client never puts two same-key frames into one server window, so
        the server's same-key chaining is only exercised by *distinct*
        clients colliding on a key.
        """
        if not requests:
            raise ProtocolError("pipeline needs at least one request")
        depth = self.pipeline_depth if depth is None else depth
        if depth < 1:
            raise ConfigurationError("pipeline depth must be >= 1")

        window: deque = deque()
        keys_in_flight: set[str] = set()
        transcripts: list[AccessTranscript] = []

        def drain_one() -> None:
            (
                request,
                epoch,
                proxy_ops,
                future,
                request_bytes,
                span,
                submitted_at,
                row,
            ) = window.popleft()
            reply = future.result(self.timeout)
            keys_in_flight.discard(request.key)
            if _obs.enabled:
                REGISTRY.gauge("sharded.pipeline.in_flight").set(len(window))
            roundtrip = 0.0
            if span is not None:
                roundtrip = time.perf_counter() - submitted_at
                REGISTRY.log_histogram("sharded.access.roundtrip.seconds").observe(
                    roundtrip
                )
                TRACER.end(span)
            response = LblAccessResponse.from_bytes(reply)
            # Reactivate this request's row for the finalize crypto: up to
            # ``depth`` request lifetimes interleave on this thread, so the
            # ambient row must follow the request being drained, not the one
            # most recently submitted.
            token = _ledger.activate(row) if row is not None else None
            try:
                value, finalize_ops = self.proxy.finalize(
                    request.key, response, counter=epoch
                )
            finally:
                if token is not None:
                    _ledger.deactivate(token)
            if row is not None:
                row.credit_wire(
                    "access",
                    "received",
                    _ledger.framed_mux_bytes(len(reply), traced=False),
                )
                _ledger.retire(row)
            if span is not None:
                # Consider after the row is fully credited so a retained
                # exemplar's ledger snapshot matches the transport totals.
                EXEMPLARS.consider(
                    roundtrip,
                    trace_id=span.trace_id,
                    label="pipelined",
                    ledger_row=row.snapshot() if row is not None else None,
                )
            transcripts.append(
                self._transcript(
                    request, proxy_ops, finalize_ops, request_bytes, len(reply), value
                )
            )

        for request in requests:
            # Same-key ordering: never two in-flight epochs for one key.
            while request.key in keys_in_flight or len(window) >= depth:
                drain_one()
            shard = self.shard_of(request.key)
            row = token = None
            if _obs.enabled:
                row = _ledger.LedgerRow(label=f"pipelined:{request.key}")
                token = _ledger.activate(row)
            try:
                lbl_request, proxy_ops, epoch = self._prepare_timed(request)
            finally:
                if token is not None:
                    _ledger.deactivate(token)
            payload = lbl_request.to_bytes()
            # The span is manual (start/end) because up to ``depth`` access
            # lifetimes interleave on this one thread; its context rides the
            # mux frame so the shard's spans parent under it.
            span = context = None
            if _obs.enabled:
                span = TRACER.start_span(
                    "sharded.access", shard=shard, request_bytes=len(payload)
                )
                context = TraceContext.from_span(span).encode()
                row.trace_id = span.trace_id
                row.credit_wire(
                    "access",
                    "sent",
                    _ledger.framed_mux_bytes(len(payload), traced=True),
                )
            future = self.clients[shard].submit(payload, trace_context=context)
            window.append(
                (
                    request,
                    epoch,
                    proxy_ops,
                    future,
                    len(payload),
                    span,
                    time.perf_counter() if _obs.enabled else 0.0,
                    row,
                )
            )
            keys_in_flight.add(request.key)
            if _obs.enabled:
                REGISTRY.counter(f"sharded.shard{shard}.requests").inc()
                REGISTRY.gauge("sharded.pipeline.in_flight").set(len(window))
        while window:
            drain_one()
        return transcripts


__all__ = ["ShardedLblDeployment"]
