"""FHE-ORTOA: one-round access-type hiding via homomorphic select (paper §3).

Per access the client sends three FHE ciphertexts — ``FHE(c_r)``,
``FHE(c_w)``, and ``FHE(v_new)`` — and the server evaluates Procedure Pcr'
obliviously::

    FHE(result) = FHE(v_old) · FHE(c_r)  +  FHE(v_new) · FHE(c_w)

For reads ``[c_r, c_w] = [1, 0]`` so the result re-encrypts the old value;
for writes ``[0, 1]`` installs the new one.  The server cannot tell which
since every input and the output are semantically secure ciphertexts.

The paper's verdict (§3.3) — and this implementation reproduces it with a
real RLWE scheme rather than assuming it — is that the unavoidable ciphertext
multiplication amplifies noise so quickly that after roughly ten accesses to
the same object, decryption fails.  :meth:`FheOrtoa.access` therefore raises
:class:`~repro.errors.NoiseBudgetExhausted` once an object's ciphertext is
spent, and :meth:`FheOrtoa.remaining_accesses` exposes the budget; the
experiment harness uses both to chart the infeasibility curve.
"""

from __future__ import annotations

from repro.core import messages
from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.crypto.fhe import FheCiphertext, FheParams, FheScheme
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, NoiseBudgetExhausted
from repro.storage.kv import KeyValueStore
from repro.types import Request, Response, StoreConfig


class FheOrtoa(OrtoaProtocol):
    """One-round oblivious GET/PUT over a homomorphically encrypted store.

    Args:
        config: Store configuration; ``value_len`` must fit the FHE ring
            (one byte per coefficient).
        fhe_params: Scheme parameters; the default ring holds 256-byte
            values with a noise budget good for a handful of accesses.
    """

    name = "fhe-ortoa"
    rounds = 1

    def __init__(
        self,
        config: StoreConfig,
        keychain: KeyChain | None = None,
        fhe_params: FheParams | None = None,
        relinearize: bool = False,
    ) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain()
        self.scheme = FheScheme(fhe_params or FheParams())
        if config.value_len > self.scheme.params.n:
            raise ConfigurationError(
                f"value_len {config.value_len} exceeds FHE ring capacity "
                f"n={self.scheme.params.n}"
            )
        # Optional §3.3 mitigation: hand the server a relinearization key so
        # stored ciphertexts stay at two components.  Bounds message/storage
        # growth; the noise-depth exhaustion remains (see the ablation bench).
        self.relin_key = self.scheme.make_relin_key() if relinearize else None
        self.store: KeyValueStore[FheCiphertext] = KeyValueStore("fhe-server")

    def initialize(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            ct = self.scheme.encrypt_bytes(self.config.pad(value))
            self.store.put_new(self.keychain.encode_key(key), ct)

    #: Upper bound for :meth:`remaining_accesses` probing; any real parameter
    #: set exhausts in far fewer accesses (the point of §3.3).
    _PROBE_LIMIT = 64

    def remaining_accesses(self, key: str) -> int:
        """How many more oblivious accesses this object's ciphertext survives.

        Computed by simulating read accesses on a *copy* of the stored
        ciphertext until the analytic noise budget runs out (the server
        state is untouched).  Capped at ``_PROBE_LIMIT``.
        """
        ct = self.store.get(self.keychain.encode_key(key))
        count = 0
        while self.scheme.noise_budget(ct) > 0 and count < self._PROBE_LIMIT:
            fresh = self.scheme.encrypt_bytes(bytes(self.config.value_len))
            ct = self._evaluate_proc(ct, fresh, c_r=1, c_w=0)
            if self.scheme.noise_budget(ct) <= 0:
                break
            count += 1
        return count

    def _evaluate_proc(
        self,
        ct_old: FheCiphertext,
        ct_new: FheCiphertext,
        c_r: int | FheCiphertext,
        c_w: int | FheCiphertext,
    ) -> FheCiphertext:
        """Server-side Proc: ``old·c_r + new·c_w`` (+ optional relin).

        Accepts either plaintext selector bits (probing) or their ciphertexts
        (the wire path); plaintext bits are encrypted before evaluation.
        """
        if isinstance(c_r, int):
            c_r = self.scheme.encrypt_scalar(c_r)
        if isinstance(c_w, int):
            c_w = self.scheme.encrypt_scalar(c_w)
        left = FheScheme.multiply(ct_old, c_r)
        right = FheScheme.multiply(ct_new, c_w)
        if self.relin_key is not None:
            left = FheScheme.relinearize(left, self.relin_key)
            right = FheScheme.relinearize(right, self.relin_key)
        return FheScheme.add(left, right)

    def access(self, request: Request) -> AccessTranscript:
        # Client side: encrypt the selector pair and the outgoing value
        # (zeros for reads — any constant works since c_w = 0 discards it).
        c_r = 1 if request.op.is_read else 0
        c_w = 1 - c_r
        outgoing = self._padded(request) or bytes(self.config.value_len)
        req = messages.FheAccessRequest(
            encoded_key=self.keychain.encode_key(request.key),
            c_r_ct=self.scheme.encrypt_scalar(c_r).to_bytes(),
            c_w_ct=self.scheme.encrypt_scalar(c_w).to_bytes(),
            new_value_ct=self.scheme.encrypt_bytes(outgoing).to_bytes(),
        )

        # Server side: homomorphic Proc — two multiplications, one addition
        # (plus two relinearizations when a relin key was provisioned).
        parsed = messages.FheAccessRequest.from_bytes(req.to_bytes())
        params = self.scheme.params
        ct_old = self.store.get(parsed.encoded_key)
        ct_result = self._evaluate_proc(
            ct_old,
            FheCiphertext.from_bytes(params, parsed.new_value_ct),
            FheCiphertext.from_bytes(params, parsed.c_r_ct),
            FheCiphertext.from_bytes(params, parsed.c_w_ct),
        )
        self.store.put(parsed.encoded_key, ct_result)
        resp = messages.FheAccessResponse(ct_result.to_bytes())

        # Client side: checked decryption — raises NoiseBudgetExhausted once
        # the object's ciphertext is spent (§3.3's observed failure).
        returned = FheCiphertext.from_bytes(params, resp.result_ct)
        try:
            response_value = self.scheme.decrypt_checked(returned, self.config.value_len)
        except NoiseBudgetExhausted as exc:
            raise NoiseBudgetExhausted(
                f"object {request.key!r}: {exc} — FHE-ORTOA cannot serve further "
                "accesses to this object (paper §3.3)"
            ) from exc

        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("client-encrypt", "proxy", OpCounts(prf=1, fhe_enc=3)),
                PhaseRecord(
                    "server-homomorphic-proc",
                    "server",
                    OpCounts(kv_ops=2, fhe_mul=2, fhe_add=1),
                ),
                PhaseRecord("client-decrypt", "proxy", OpCounts(fhe_dec=1)),
            ),
            round_trips=(RoundTrip(len(req.to_bytes()), len(resp.to_bytes())),),
            response=Response(request.key, response_value),
        )


__all__ = ["FheOrtoa"]
