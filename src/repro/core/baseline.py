"""The two-round-trip (2RTT) baseline protocol of the paper's §6.

To hide the operation type without ORTOA, state-of-the-art oblivious systems
perform a read followed by a write for *every* client request:

1. **Round 1** — fetch the object's ciphertext; the proxy decrypts it.
2. **Round 2** — write back either a re-encryption of the same value (reads)
   or an encryption of the new value (writes).  Non-deterministic encryption
   makes the two indistinguishable, but the extra round doubles the WAN cost.

This is the comparison point for every performance figure in §6.
"""

from __future__ import annotations

from repro.core import messages
from repro.core.base import (
    AccessTranscript,
    OpCounts,
    OrtoaProtocol,
    PhaseRecord,
    RoundTrip,
)
from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.storage.kv import KeyValueStore
from repro.types import Request, Response, StoreConfig


class TwoRoundBaseline(OrtoaProtocol):
    """Read-then-write access-type hiding over an AEAD-encrypted store."""

    name = "2rtt-baseline"
    rounds = 2

    def __init__(self, config: StoreConfig, keychain: KeyChain | None = None) -> None:
        super().__init__(config)
        self.keychain = keychain or KeyChain()
        self.store: KeyValueStore[bytes] = KeyValueStore("baseline-server")

    def initialize(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            ciphertext = aead.encrypt(self.keychain.data_key, self.config.pad(value))
            self.store.put_new(self.keychain.encode_key(key), ciphertext)

    def access(self, request: Request) -> AccessTranscript:
        encoded_key = self.keychain.encode_key(request.key)

        # Round 1: read. (Server work: one KV get.)
        read_req = messages.ReadRequest(encoded_key)
        stored_ct = self.store.get(messages.ReadRequest.from_bytes(read_req.to_bytes()).encoded_key)
        read_resp = messages.ReadResponse(stored_ct)

        # Proxy: decrypt, then re-encrypt old (read) or encrypt new (write).
        current_value = aead.decrypt(self.keychain.data_key, read_resp.ciphertext)
        outgoing_value = self._padded(request) if request.op.is_write else current_value
        assert outgoing_value is not None
        fresh_ct = aead.encrypt(self.keychain.data_key, outgoing_value)

        # Round 2: write back. (Server work: one KV put.)
        write_req = messages.WriteRequest(encoded_key, fresh_ct)
        parsed = messages.WriteRequest.from_bytes(write_req.to_bytes())
        self.store.put(parsed.encoded_key, parsed.ciphertext)
        ack = messages.WriteAck()

        response_value = current_value if request.op.is_read else outgoing_value
        return AccessTranscript(
            op=request.op,
            phases=(
                PhaseRecord("proxy-prepare-read", "proxy", OpCounts(prf=1)),
                PhaseRecord("server-read", "server", OpCounts(kv_ops=1)),
                PhaseRecord(
                    "proxy-reencrypt", "proxy", OpCounts(aead_dec=1, aead_enc=1)
                ),
                PhaseRecord("server-write", "server", OpCounts(kv_ops=1)),
            ),
            round_trips=(
                RoundTrip(len(read_req.to_bytes()), len(read_resp.to_bytes())),
                RoundTrip(len(write_req.to_bytes()), len(ack.to_bytes())),
            ),
            response=Response(request.key, response_value),
        )


__all__ = ["TwoRoundBaseline"]
