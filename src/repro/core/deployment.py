"""Scaled deployments: sharding objects across proxy/server pairs (§6.2.4).

The paper scales LBL-ORTOA by pairing each storage server with its own proxy
and partitioning the key space across the pairs.  Because ORTOA hides only
the operation *type* (not which object is accessed), routing by key leaks
nothing new, so proxies scale horizontally without weakening the guarantee.

:class:`ShardedDeployment` provides the functional analogue: it wraps ``s``
independent protocol instances behind the single-store API, routing each
request by a stable hash of its PRF-encoded key.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import AccessTranscript, OrtoaProtocol
from repro.errors import ConfigurationError
from repro.storage.sharding import ShardRouter
from repro.types import Request, StoreConfig


class ShardedDeployment(OrtoaProtocol):
    """``s`` proxy/server pairs behind one oblivious GET/PUT front door.

    Args:
        config: Shared store configuration.
        make_protocol: Factory producing one fresh protocol instance per
            shard (each gets its own keys, proxy state, and server store).
        num_shards: The paper sweeps 1 → 5.
    """

    name = "sharded"

    def __init__(
        self,
        config: StoreConfig,
        make_protocol: Callable[[], OrtoaProtocol],
        num_shards: int,
    ) -> None:
        super().__init__(config)
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.shards: list[OrtoaProtocol] = [make_protocol() for _ in range(num_shards)]
        self.router = ShardRouter(num_shards)
        self._shard_of_key: dict[str, int] = {}
        self.rounds = self.shards[0].rounds
        self.name = f"sharded-{self.shards[0].name}-x{num_shards}"

    @property
    def num_shards(self) -> int:
        """Number of proxy/server pairs in this deployment."""
        return len(self.shards)

    def _route(self, key: str) -> OrtoaProtocol:
        try:
            return self.shards[self._shard_of_key[key]]
        except KeyError:
            raise ConfigurationError(f"key {key!r} was never initialized") from None

    def initialize(self, records: dict[str, bytes]) -> None:
        # Route on a stable hash of the key string (each shard derives its
        # own PRF encodings, so routing must happen before encoding).
        partitions: list[dict[str, bytes]] = [{} for _ in self.shards]
        for key, value in records.items():
            shard = self.router.shard_of(key.encode("utf-8"))
            self._shard_of_key[key] = shard
            partitions[shard][key] = value
        for shard, part in zip(self.shards, partitions):
            shard.initialize(part)

    def access(self, request: Request) -> AccessTranscript:
        return self._route(request.key).access(request)

    def shard_sizes(self) -> list[int]:
        """Number of keys routed to each shard (balance diagnostic)."""
        sizes = [0] * len(self.shards)
        for shard in self._shard_of_key.values():
            sizes[shard] += 1
        return sizes


__all__ = ["ShardedDeployment"]
