"""A minimal query layer: point queries with automatic index selection.

The last step of the §8.2 story: given a table and its registered secondary
indexes, ``where(column, value)`` answers a point predicate using the
cheapest available plan —

* **primary key** → one oblivious read,
* **indexed column** → one index lookup + one batched/looped fetch per
  matching key,
* **anything else** → the honest full scan.

``explain()`` returns the chosen plan so applications (and tests) can see
which access path a predicate takes; the *server* of course sees only the
oblivious accesses themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import KeyNotFoundError
from repro.relational.index import SecondaryIndex
from repro.relational.table import ObliviousTable


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """How a predicate will be answered."""

    strategy: str  # "primary-key" | "secondary-index" | "full-scan"
    column: str

    @property
    def uses_index(self) -> bool:
        """Whether the plan avoids a full scan."""
        return self.strategy != "full-scan"


class QueryEngine:
    """Point-query execution over one table and its indexes.

    Args:
        table: The table to query.
        indexes: Secondary indexes keyed by column name.  The engine keeps
            them *consistent is the caller's job* — use :meth:`insert` /
            :meth:`delete` here (rather than on the bare table) to have the
            engine maintain them automatically.
    """

    def __init__(
        self,
        table: ObliviousTable,
        indexes: dict[str, SecondaryIndex] | None = None,
    ) -> None:
        self.table = table
        self.indexes = dict(indexes or {})
        for column in self.indexes:
            self.table.schema.column(column)  # validates names early

    # ------------------------------------------------------------------ #
    # Index-maintaining mutations
    # ------------------------------------------------------------------ #

    def insert(self, row: dict[str, Any]) -> None:
        """Insert a row and register it in every index."""
        self.table.insert(row)
        pk = row[self.table.schema.primary_key]
        for column, index in self.indexes.items():
            index.add(row[column], pk)

    def delete(self, pk: Any) -> None:
        """Delete a row and deregister it from every index."""
        row = self.table.get(pk)
        self.table.delete(pk)
        for column, index in self.indexes.items():
            index.remove(row[column], pk)

    def update(self, pk: Any, **changes: Any) -> dict[str, Any]:
        """Update columns, migrating index postings for changed values."""
        before = self.table.get(pk)
        after = self.table.update(pk, **changes)
        for column, index in self.indexes.items():
            if column in changes and before[column] != after[column]:
                index.remove(before[column], pk)
                index.add(after[column], pk)
        return after

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def explain(self, column: str) -> QueryPlan:
        """The plan ``where(column, ...)`` would use."""
        self.table.schema.column(column)
        if column == self.table.schema.primary_key:
            return QueryPlan("primary-key", column)
        if column in self.indexes:
            return QueryPlan("secondary-index", column)
        return QueryPlan("full-scan", column)

    def where(self, column: str, value: Any) -> list[dict[str, Any]]:
        """All rows with ``row[column] == value``.

        Raises:
            ConfigurationError: unknown column name.
        """
        plan = self.explain(column)
        if plan.strategy == "primary-key":
            try:
                return [self.table.get(value)]
            except KeyNotFoundError:
                return []
        if plan.strategy == "secondary-index":
            pks = self.indexes[column].lookup(value)
            if not pks:
                return []
            return self.table.get_many(pks)
        return [row for row in self.table.scan() if row[column] == value]


__all__ = ["QueryEngine", "QueryPlan"]
