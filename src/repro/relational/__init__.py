"""Relational facade over ORTOA (paper §8, "Supporting complex operations").

The paper observes that the ORTOA protocols "as-is can support reading and
writing on relational data based on primary keys".  This package makes that
concrete: :class:`~repro.relational.schema.Schema` packs typed rows into the
fixed-width values ORTOA requires (fixed width is also the §2.2 length-
leak defence), and :class:`~repro.relational.table.ObliviousTable` exposes
primary-key get/insert/update/delete over any protocol of the family.

Point queries on non-key attributes and range queries need private indexing
(the paper cites SEAL-style designs); like the paper, we leave the index
structure itself out of scope — :meth:`ObliviousTable.scan` provides the
honest full-scan fallback.
"""

from repro.relational.index import SecondaryIndex
from repro.relational.query import QueryEngine, QueryPlan
from repro.relational.schema import BytesColumn, IntColumn, Schema, StrColumn
from repro.relational.table import ObliviousTable

__all__ = [
    "Schema",
    "IntColumn",
    "StrColumn",
    "BytesColumn",
    "ObliviousTable",
    "SecondaryIndex",
    "QueryEngine",
    "QueryPlan",
]
