"""Primary-key tables over an ORTOA protocol.

An :class:`ObliviousTable` maps relational rows onto the key-value model:
the primary-key value becomes the ORTOA key (namespaced per table), the
remaining columns pack into the fixed-width value.  Every data operation is
one oblivious protocol access, so the server learns neither the operation
type nor any column content.

Row bookkeeping lives at the (trusted) proxy side — ORTOA stores must be
pre-populated, so the table pre-allocates a fixed capacity of slots and
keeps a primary-key → slot map (O(rows) proxy state, the same order as the
protocol's own access counters).  The slot-count (capacity) is public, the
live-count is not: inserts and deletes are oblivious writes like any other.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.base import OrtoaProtocol
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.relational.schema import Schema

#: Flag byte prepended to each stored row: live or free slot.
_LIVE, _FREE = b"\x01", b"\x00"


class ObliviousTable:
    """A relational table with oblivious primary-key access.

    Args:
        name: Table name; namespaces the keys of multiple tables sharing
            one protocol deployment.
        schema: Row layout; ``schema.row_len + 1`` must fit the protocol's
            ``value_len`` (one byte is the liveness flag).
        protocol: An initialized-empty ORTOA deployment to own; the table
            calls ``initialize`` itself with its pre-allocated slots.
        capacity: Fixed number of row slots (public); inserts beyond it
            fail.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        protocol: OrtoaProtocol,
        capacity: int = 1024,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if schema.row_len + 1 > protocol.config.value_len:
            raise ConfigurationError(
                f"schema rows ({schema.row_len} B + flag) exceed the protocol's "
                f"value_len ({protocol.config.value_len} B)"
            )
        self.name = name
        self.schema = schema
        self.protocol = protocol
        self.capacity = capacity
        # Proxy-side metadata: where each live row sits, and which slots
        # are free (allocated LIFO so the layout is deterministic).
        self._slot_by_pk: dict[Any, int] = {}
        self._free_slots: list[int] = list(range(capacity - 1, -1, -1))
        free_value = self._pack_free()
        protocol.initialize(
            {self._slot_key(s): free_value for s in range(capacity)}
        )

    # ------------------------------------------------------------------ #
    # Key and value packing
    # ------------------------------------------------------------------ #

    def _slot_key(self, slot: int) -> str:
        return f"table:{self.name}:{slot}"

    def _pack_live(self, row: dict[str, Any]) -> bytes:
        return self.protocol.config.pad(_LIVE + self.schema.encode_row(row))

    def _pack_free(self) -> bytes:
        return self.protocol.config.pad(_FREE + bytes(self.schema.row_len))

    def _unpack(self, value: bytes) -> dict[str, Any] | None:
        flag, body = value[:1], value[1:1 + self.schema.row_len]
        if flag == _FREE:
            return None
        return self.schema.decode_row(body)

    # ------------------------------------------------------------------ #
    # Data operations (each is one oblivious access)
    # ------------------------------------------------------------------ #

    def insert(self, row: dict[str, Any]) -> None:
        """Insert a new row (one oblivious write).

        Raises:
            ConfigurationError: duplicate primary key, or table full.
        """
        pk = row[self.schema.primary_key]
        if pk in self._slot_by_pk:
            raise ConfigurationError(f"duplicate primary key {pk!r}")
        if not self._free_slots:
            raise ConfigurationError(
                f"table {self.name!r} is full ({self.capacity} slots)"
            )
        encoded = self._pack_live(row)  # validates the row before allocating
        slot = self._free_slots.pop()
        self.protocol.write(self._slot_key(slot), encoded)
        self._slot_by_pk[pk] = slot

    def get(self, pk: Any) -> dict[str, Any]:
        """Fetch a row by primary key (one oblivious read)."""
        try:
            slot = self._slot_by_pk[pk]
        except KeyError:
            raise KeyNotFoundError(f"no row with primary key {pk!r}") from None
        row = self._unpack(self.protocol.read(self._slot_key(slot)))
        if row is None or row[self.schema.primary_key] != pk:
            raise KeyNotFoundError(f"row for {pk!r} missing at its slot")
        return row

    def update(self, pk: Any, **changes: Any) -> dict[str, Any]:
        """Read-modify-write selected columns (two oblivious accesses).

        Both accesses are individually operation-type hidden; the adversary
        sees two accesses to one location, not what they did.
        """
        if self.schema.primary_key in changes:
            raise ConfigurationError("cannot change the primary key; delete + insert")
        row = self.get(pk)
        for column, value in changes.items():
            self.schema.column(column)  # validates the name
            row[column] = value
        self.protocol.write(self._slot_key(self._slot_by_pk[pk]), self._pack_live(row))
        return row

    def delete(self, pk: Any) -> None:
        """Remove a row (one oblivious write of the free marker)."""
        try:
            slot = self._slot_by_pk.pop(pk)
        except KeyError:
            raise KeyNotFoundError(f"no row with primary key {pk!r}") from None
        self.protocol.write(self._slot_key(slot), self._pack_free())
        self._free_slots.append(slot)

    def get_many(self, pks: list[Any]) -> list[dict[str, Any]]:
        """Fetch several rows; batched into one round trip over LBL-ORTOA.

        Falls back to sequential oblivious reads for other protocols.
        """
        from repro.core.lbl import LblOrtoa
        from repro.core.lbl.concurrent import access_batch
        from repro.types import Request

        missing = [pk for pk in pks if pk not in self._slot_by_pk]
        if missing:
            raise KeyNotFoundError(f"no rows with primary keys {missing!r}")
        if not pks:
            return []
        if isinstance(self.protocol, LblOrtoa):
            requests = [
                Request.read(self._slot_key(self._slot_by_pk[pk])) for pk in pks
            ]
            batch = access_batch(self.protocol, requests)
            values = [t.response.value for t in batch.per_request]
        else:
            values = [
                self.protocol.read(self._slot_key(self._slot_by_pk[pk])) for pk in pks
            ]
        rows = []
        for pk, value in zip(pks, values):
            row = self._unpack(value)
            if row is None or row[self.schema.primary_key] != pk:
                raise KeyNotFoundError(f"row for {pk!r} missing at its slot")
            rows.append(row)
        return rows

    def scan(self) -> Iterator[dict[str, Any]]:
        """Full-table scan: one oblivious read per slot, live rows yielded.

        The honest fallback for non-key predicates until a private index is
        layered on (paper §8); the access pattern is the whole table, which
        leaks nothing about the predicate.
        """
        for slot in range(self.capacity):
            row = self._unpack(self.protocol.read(self._slot_key(slot)))
            if row is not None:
                yield row

    def __len__(self) -> int:
        return len(self._slot_by_pk)

    def __contains__(self, pk: Any) -> bool:
        return pk in self._slot_by_pk


__all__ = ["ObliviousTable"]
