"""Fixed-width row schemas.

ORTOA stores values of one fixed length (§2.2), so relational rows must
pack into a constant number of bytes.  A :class:`Schema` is an ordered list
of typed, fixed-width columns; encoding is positional concatenation and
decoding is exact slicing — no delimiters, no length leaks.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.errors import ConfigurationError


class Column(abc.ABC):
    """One fixed-width column.

    Args:
        name: Column name (unique within a schema).
        width: Serialized width in bytes.
    """

    def __init__(self, name: str, width: int) -> None:
        if not name:
            raise ConfigurationError("column name must be non-empty")
        if width < 1:
            raise ConfigurationError(f"column {name!r}: width must be >= 1")
        self.name = name
        self.width = width

    @abc.abstractmethod
    def encode(self, value: Any) -> bytes:
        """Serialize ``value`` into exactly ``width`` bytes."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> Any:
        """Inverse of :meth:`encode` on a ``width``-byte slice."""


class IntColumn(Column):
    """Unsigned big-endian integer, default 8 bytes."""

    def __init__(self, name: str, width: int = 8) -> None:
        super().__init__(name, width)

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, int) or value < 0:
            raise ConfigurationError(f"column {self.name!r}: need a non-negative int")
        if value >= 1 << (8 * self.width):
            raise ConfigurationError(
                f"column {self.name!r}: {value} overflows {self.width} bytes"
            )
        return value.to_bytes(self.width, "big")

    def decode(self, data: bytes) -> int:
        return int.from_bytes(data, "big")


class StrColumn(Column):
    """UTF-8 string, zero-padded; decoding strips the padding."""

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, str):
            raise ConfigurationError(f"column {self.name!r}: need a str")
        raw = value.encode("utf-8")
        if len(raw) > self.width:
            raise ConfigurationError(
                f"column {self.name!r}: {len(raw)} bytes exceeds width {self.width}"
            )
        return raw.ljust(self.width, b"\x00")

    def decode(self, data: bytes) -> str:
        return data.rstrip(b"\x00").decode("utf-8")


class BytesColumn(Column):
    """Raw bytes of exactly ``width`` (caller manages any padding)."""

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, bytes) or len(value) != self.width:
            raise ConfigurationError(
                f"column {self.name!r}: need exactly {self.width} bytes"
            )
        return value

    def decode(self, data: bytes) -> bytes:
        return data


class Schema:
    """An ordered collection of columns with a designated primary key.

    Args:
        columns: Column definitions, in storage order.
        primary_key: Name of the key column (must be in ``columns``); its
            *encoded value* becomes the ORTOA key, so it never reaches the
            server in the clear.
    """

    def __init__(self, columns: list[Column], primary_key: str) -> None:
        if not columns:
            raise ConfigurationError("schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate column names")
        if primary_key not in names:
            raise ConfigurationError(f"primary key {primary_key!r} is not a column")
        self.columns = list(columns)
        self.primary_key = primary_key
        self._by_name = {c.name: c for c in columns}

    @property
    def row_len(self) -> int:
        """Fixed serialized row length — ORTOA's ``value_len``."""
        return sum(c.width for c in self.columns)

    def column(self, name: str) -> Column:
        """The column definition named ``name``; raises if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown column {name!r}") from None

    def encode_row(self, row: dict[str, Any]) -> bytes:
        """Pack a full row dict into its fixed-width byte form."""
        missing = {c.name for c in self.columns} - set(row)
        if missing:
            raise ConfigurationError(f"row is missing columns: {sorted(missing)}")
        extra = set(row) - {c.name for c in self.columns}
        if extra:
            raise ConfigurationError(f"row has unknown columns: {sorted(extra)}")
        return b"".join(c.encode(row[c.name]) for c in self.columns)

    def decode_row(self, data: bytes) -> dict[str, Any]:
        """Unpack a fixed-width byte row back into a dict."""
        if len(data) != self.row_len:
            raise ConfigurationError(
                f"row data is {len(data)} bytes, schema needs {self.row_len}"
            )
        row = {}
        offset = 0
        for column in self.columns:
            row[column.name] = column.decode(data[offset:offset + column.width])
            offset += column.width
        return row


__all__ = ["Column", "IntColumn", "StrColumn", "BytesColumn", "Schema"]
