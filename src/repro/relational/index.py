"""Private secondary indexes over ORTOA (paper §8.2).

The paper notes that point queries on non-primary-key attributes need
"additional data structures such as private indexing", citing SEAL-style
designs that layer richer queries over a get/put-only oblivious store.
This module builds exactly that shape: an index from an attribute value to
the primary keys holding it, where the index *itself* lives in the
oblivious store — so index lookups enjoy the same operation-type
obliviousness as data accesses, and index contents (like everything else)
never reach the server in the clear.

Design constraints inherited from ORTOA:

* **fixed-size values** — each index entry is a fixed-capacity posting list
  (padded; overflow raises, the honest failure mode);
* **pre-allocated keys** — entries exist for hashed attribute buckets, not
  raw attribute values, so the key space is finite and initialized up
  front;
* **leakage** — the server sees *which index bucket* is touched per query
  (the access-pattern non-goal of §2.3, unchanged), but not the attribute
  value, the matching keys, or whether the touch was a lookup or an update.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.core.base import OrtoaProtocol
from repro.errors import ConfigurationError
from repro.relational.schema import Column

_COUNT = 2  # u16 posting count prefix


class SecondaryIndex:
    """A hash index ``column value → primary keys`` stored obliviously.

    Args:
        name: Index name (namespaces its keys in the shared store).
        column: The indexed column (drives value encoding).
        pk_column: The table's primary-key column (posting entries encode
            with it, so postings are fixed width).
        protocol: An *uninitialized* ORTOA deployment dedicated to this
            index; the index pre-allocates all its buckets at construction.
        num_buckets: Hash space size; more buckets, fewer collisions mixed
            into one posting list.
        postings_per_bucket: Fixed posting-list capacity per bucket.
    """

    def __init__(
        self,
        name: str,
        column: Column,
        pk_column: Column,
        protocol: OrtoaProtocol,
        num_buckets: int = 64,
        postings_per_bucket: int = 8,
    ) -> None:
        if num_buckets < 1 or postings_per_bucket < 1:
            raise ConfigurationError("buckets and capacity must be >= 1")
        entry_len = _COUNT + postings_per_bucket * (column.width + pk_column.width)
        if entry_len > protocol.config.value_len:
            raise ConfigurationError(
                f"index entries need {entry_len} B but the protocol's "
                f"value_len is {protocol.config.value_len} B"
            )
        self.name = name
        self.column = column
        self.pk_column = pk_column
        self.protocol = protocol
        self.num_buckets = num_buckets
        self.postings_per_bucket = postings_per_bucket
        protocol.initialize(
            {self._bucket_key(b): self._pack([]) for b in range(num_buckets)}
        )

    # ------------------------------------------------------------------ #
    # Bucket encoding
    # ------------------------------------------------------------------ #

    def _bucket_key(self, bucket: int) -> str:
        return f"index:{self.name}:{bucket}"

    def _bucket_of(self, value: Any) -> int:
        encoded = self.column.encode(value)
        digest = hashlib.sha256(b"sec-index" + self.name.encode() + encoded).digest()
        return int.from_bytes(digest[:8], "big") % self.num_buckets

    def _pack(self, postings: list[tuple[bytes, bytes]]) -> bytes:
        if len(postings) > self.postings_per_bucket:
            raise ConfigurationError(
                f"index bucket overflow ({len(postings)} postings, capacity "
                f"{self.postings_per_bucket}); raise num_buckets or capacity"
            )
        body = b"".join(value + pk for value, pk in postings)
        packed = len(postings).to_bytes(_COUNT, "big") + body
        return self.protocol.config.pad(packed)

    def _unpack(self, data: bytes) -> list[tuple[bytes, bytes]]:
        count = int.from_bytes(data[:_COUNT], "big")
        width = self.column.width + self.pk_column.width
        postings = []
        for i in range(count):
            start = _COUNT + i * width
            chunk = data[start:start + width]
            postings.append((chunk[: self.column.width], chunk[self.column.width:]))
        return postings

    # ------------------------------------------------------------------ #
    # Operations (each bucket touch is one oblivious access)
    # ------------------------------------------------------------------ #

    def add(self, value: Any, pk: Any) -> None:
        """Register ``pk`` under ``value`` (read + write, both oblivious)."""
        bucket = self._bucket_of(value)
        encoded_value = self.column.encode(value)
        encoded_pk = self.pk_column.encode(pk)
        postings = self._unpack(self.protocol.read(self._bucket_key(bucket)))
        if (encoded_value, encoded_pk) in postings:
            return  # idempotent
        postings.append((encoded_value, encoded_pk))
        self.protocol.write(self._bucket_key(bucket), self._pack(postings))

    def remove(self, value: Any, pk: Any) -> bool:
        """Unregister a posting; returns whether it existed."""
        bucket = self._bucket_of(value)
        target = (self.column.encode(value), self.pk_column.encode(pk))
        postings = self._unpack(self.protocol.read(self._bucket_key(bucket)))
        if target not in postings:
            return False
        postings.remove(target)
        self.protocol.write(self._bucket_key(bucket), self._pack(postings))
        return True

    def lookup(self, value: Any) -> list[Any]:
        """Primary keys currently registered under ``value`` (one read).

        Collisions (other values hashing to the same bucket) are filtered
        proxy-side; the server cannot tell a hit from a miss.
        """
        bucket = self._bucket_of(value)
        encoded_value = self.column.encode(value)
        postings = self._unpack(self.protocol.read(self._bucket_key(bucket)))
        return [
            self.pk_column.decode(pk)
            for posting_value, pk in postings
            if posting_value == encoded_value
        ]


__all__ = ["SecondaryIndex"]
