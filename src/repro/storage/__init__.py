"""Storage substrate: an in-memory key-value engine plus shard routing.

Stands in for the Redis deployment of the paper's experiments (§4.1 mentions
Redis as the underlying store).  The engine is deliberately value-agnostic:
the baseline and TEE variants store AEAD ciphertexts, LBL-ORTOA stores label
lists, and FHE-ORTOA stores homomorphic ciphertexts.
"""

from repro.storage.kv import KeyValueStore
from repro.storage.sharding import ShardRouter

__all__ = ["KeyValueStore", "ShardRouter"]
