"""Shard routing for scaled deployments (paper §6.2.4).

The paper scales ORTOA by pairing each storage server with a proxy and
sharding the data across the pairs.  Routing is by a stable hash of the
PRF-encoded key, so (a) the assignment is deterministic, (b) the router
learns nothing beyond the encoded key it already sees, and (c) shards stay
balanced in expectation.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError


class ShardRouter:
    """Maps PRF-encoded keys to shard indices ``0 .. num_shards-1``."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, encoded_key: bytes) -> int:
        """Stable shard index for an encoded key."""
        digest = hashlib.sha256(b"shard-routing" + encoded_key).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def partition(self, encoded_keys: list[bytes]) -> list[list[bytes]]:
        """Split ``encoded_keys`` into per-shard lists."""
        shards: list[list[bytes]] = [[] for _ in range(self.num_shards)]
        for key in encoded_keys:
            shards[self.shard_of(key)].append(key)
        return shards


__all__ = ["ShardRouter"]
