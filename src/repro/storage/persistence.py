"""Durable snapshots of server-side stores.

The paper treats server durability as the cloud provider's problem (Redis
persistence); this module provides the equivalent for the in-memory engine
so a whole deployment — server snapshot + proxy WAL
(:mod:`repro.core.lbl.wal`) + the master key — can stop and resume.

The format is deliberately boring: a magic header, then length-prefixed
``(key, value)`` records.  Value encoding is pluggable per store content
(raw ciphertext bytes, LBL label lists, FHE ciphertexts) via small codec
objects, keeping the engine itself value-agnostic.
"""

from __future__ import annotations

import os
import pathlib
import struct
from typing import Generic, Protocol, TypeVar

from repro.crypto.fhe import FheCiphertext, FheParams
from repro.crypto.labels import StoredLabel
from repro.errors import StorageError
from repro.storage.kv import KeyValueStore

V = TypeVar("V")

_MAGIC = b"ORTOASNAP1"
_U32 = struct.Struct(">I")


class ValueCodec(Protocol[V]):
    """Serializes one store value type."""

    def encode(self, value: V) -> bytes:
        """Serialize one store value."""
        ...

    def decode(self, data: bytes) -> V:
        """Deserialize one store value."""
        ...


class BytesCodec:
    """Identity codec for stores of raw ciphertext bytes (baseline/TEE)."""

    def encode(self, value: bytes) -> bytes:
        """Serialize one store value."""
        return value

    def decode(self, data: bytes) -> bytes:
        """Deserialize one store value."""
        return data


class LabelListCodec:
    """Codec for LBL server records: lists of (label, decrypt_index).

    Layout per label: ``[u32 label_len][label][u8 has_index][u8 index?]``.
    """

    def encode(self, value: list[StoredLabel]) -> bytes:
        """Serialize one store value."""
        parts = [_U32.pack(len(value))]
        for stored in value:
            parts.append(_U32.pack(len(stored.label)))
            parts.append(stored.label)
            if stored.decrypt_index is None:
                parts.append(b"\x00")
            else:
                parts.append(b"\x01" + bytes([stored.decrypt_index]))
        return b"".join(parts)

    def decode(self, data: bytes) -> list[StoredLabel]:
        """Deserialize one store value."""
        (count,) = _U32.unpack_from(data, 0)
        pos = _U32.size
        labels = []
        for _ in range(count):
            (label_len,) = _U32.unpack_from(data, pos)
            pos += _U32.size
            label = data[pos:pos + label_len]
            pos += label_len
            has_index = data[pos]
            pos += 1
            index = None
            if has_index:
                index = data[pos]
                pos += 1
            labels.append(StoredLabel(label, index))
        if pos != len(data):
            raise StorageError("trailing bytes in label record")
        return labels


class FheCiphertextCodec:
    """Codec for FHE server records (delegates to ciphertext serialization)."""

    def __init__(self, params: FheParams) -> None:
        self.params = params

    def encode(self, value: FheCiphertext) -> bytes:
        """Serialize one store value."""
        return value.to_bytes()

    def decode(self, data: bytes) -> FheCiphertext:
        """Deserialize one store value."""
        return FheCiphertext.from_bytes(self.params, data)


def save_store(
    store: KeyValueStore[V], path: str | os.PathLike, codec: ValueCodec[V]
) -> None:
    """Write an atomic snapshot of ``store`` to ``path``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(target.suffix + ".tmp")
    with open(tmp, "wb") as out:
        out.write(_MAGIC)
        for key in store:
            value_bytes = codec.encode(store.get(key))
            out.write(_U32.pack(len(key)))
            out.write(key)
            out.write(_U32.pack(len(value_bytes)))
            out.write(value_bytes)
        out.flush()
        os.fsync(out.fileno())
    tmp.replace(target)


def load_store(
    path: str | os.PathLike, codec: ValueCodec[V], name: str = "restored"
) -> KeyValueStore[V]:
    """Rebuild a store from a snapshot.

    Raises:
        StorageError: missing file, bad magic, or a truncated record.
    """
    source = pathlib.Path(path)
    if not source.exists():
        raise StorageError(f"snapshot {source} does not exist")
    data = source.read_bytes()
    if not data.startswith(_MAGIC):
        raise StorageError(f"snapshot {source} has a bad header")
    store: KeyValueStore[V] = KeyValueStore(name)
    pos = len(_MAGIC)
    while pos < len(data):
        try:
            (key_len,) = _U32.unpack_from(data, pos)
            pos += _U32.size
            key = data[pos:pos + key_len]
            pos += key_len
            (value_len,) = _U32.unpack_from(data, pos)
            pos += _U32.size
            value_bytes = data[pos:pos + value_len]
            pos += value_len
            if len(key) != key_len or len(value_bytes) != value_len:
                raise StorageError("truncated record")
        except struct.error:
            raise StorageError(f"snapshot {source} is truncated") from None
        store.put_new(key, codec.decode(value_bytes))
    return store


__all__ = [
    "ValueCodec",
    "BytesCodec",
    "LabelListCodec",
    "FheCiphertextCodec",
    "save_store",
    "load_store",
]
