"""In-memory key-value engine used by every ORTOA server variant.

Keys are the PRF-encoded byte strings of §2.2 — the engine never sees a
plaintext key.  Values are opaque to the engine.  Basic operation counters
are kept so experiments can assert on server-side work.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.errors import KeyNotFoundError, StorageError

V = TypeVar("V")


class KeyValueStore(Generic[V]):
    """A dictionary-backed store with GET/PUT semantics and counters.

    Args:
        name: Optional label used in error messages and reports.
    """

    def __init__(self, name: str = "kv") -> None:
        self.name = name
        self._data: dict[bytes, V] = {}
        self.get_count = 0
        self.put_count = 0
        self.multi_get_count = 0
        self.multi_put_count = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, encoded_key: bytes) -> bool:
        return encoded_key in self._data

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._data)

    def get(self, encoded_key: bytes) -> V:
        """Fetch the stored value.

        Raises:
            KeyNotFoundError: if the key was never initialized.
        """
        self.get_count += 1
        try:
            return self._data[encoded_key]
        except KeyError:
            raise KeyNotFoundError(
                f"{self.name}: key {encoded_key.hex()[:16]}… not found"
            ) from None

    def put(self, encoded_key: bytes, value: V) -> None:
        """Store (insert or overwrite) a value."""
        if not isinstance(encoded_key, bytes):
            raise StorageError("encoded keys must be bytes")
        self.put_count += 1
        self._data[encoded_key] = value

    def get_many(self, encoded_keys: list[bytes]) -> list[V]:
        """Fetch many values in one engine call.

        Per-key accounting matches ``len(encoded_keys)`` sequential gets
        (``get_count`` advances by the key count), while ``multi_get_count``
        advances by exactly one — so callers can assert both "the work was
        done" and "it was done in a single fused storage access".

        Raises:
            KeyNotFoundError: on the first missing key (no partial reads
                are exposed; the fused server pre-checks membership).
        """
        self.get_count += len(encoded_keys)
        self.multi_get_count += 1
        try:
            return [self._data[encoded_key] for encoded_key in encoded_keys]
        except KeyError as exc:
            raise KeyNotFoundError(
                f"{self.name}: key {exc.args[0].hex()[:16]}… not found"
            ) from None

    def put_many(self, items: list[tuple[bytes, V]]) -> None:
        """Store many values in one engine call (insert or overwrite).

        Mirrors :meth:`get_many`'s accounting: ``put_count`` advances per
        item, ``multi_put_count`` by one.
        """
        for encoded_key, _value in items:
            if not isinstance(encoded_key, bytes):
                raise StorageError("encoded keys must be bytes")
        self.put_count += len(items)
        self.multi_put_count += 1
        for encoded_key, value in items:
            self._data[encoded_key] = value

    def put_new(self, encoded_key: bytes, value: V) -> None:
        """Insert a value that must not already exist (bulk initialization)."""
        if encoded_key in self._data:
            raise StorageError(
                f"{self.name}: duplicate key {encoded_key.hex()[:16]}… at init"
            )
        self.put(encoded_key, value)

    def delete(self, encoded_key: bytes) -> None:
        """Remove a key if present (idempotent)."""
        self._data.pop(encoded_key, None)

    def clear(self) -> None:
        """Drop all stored records."""
        self._data.clear()


__all__ = ["KeyValueStore"]
