"""Cryptographic substrate for the ORTOA protocols.

Everything here is built on Python's standard library primitives
(HMAC-SHA256) plus an educational from-scratch RLWE/BFV-style homomorphic
scheme, so the package has no binary crypto dependencies.

Public surface:

* :class:`repro.crypto.prf.Prf` — deterministic pseudo-random function used
  for key encoding and label derivation.
* :mod:`repro.crypto.aead` — authenticated encryption (encrypt-then-MAC) with
  detectable decryption failure, the property LBL-ORTOA's server relies on.
* :class:`repro.crypto.keys.KeyChain` — domain-separated key derivation.
* :mod:`repro.crypto.fhe` — the BFV-style scheme with noise-budget tracking
  used by FHE-ORTOA (paper §3).
* :mod:`repro.crypto.labels` — the label codec of LBL-ORTOA (paper §5, §10).
"""

from repro.crypto.aead import decrypt, encrypt, ciphertext_len
from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf

__all__ = ["Prf", "KeyChain", "encrypt", "decrypt", "ciphertext_len"]
