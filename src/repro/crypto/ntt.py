"""Number-theoretic transform for fast negacyclic multiplication.

The schoolbook convolution in :mod:`repro.crypto.poly` is O(n²); production
FHE libraries (SEAL included) multiply in O(n log n) via the NTT over an
*NTT-friendly* prime modulus ``q ≡ 1 (mod 2n)``.  This module provides:

* :func:`find_ntt_prime` — smallest prime of a requested bit size with
  ``q ≡ 1 (mod 2n)``;
* :class:`NegacyclicNtt` — forward/inverse transforms with the ψ-twist that
  folds the ``x^n + 1`` reduction into the transform itself, so negacyclic
  multiplication is just ``intt(ntt(a) * ntt(b))``;
* :func:`negacyclic_convolve_ntt` — drop-in fast replacement for the
  schoolbook product *when the modulus allows it*.

:class:`~repro.crypto.poly.Poly` uses this path automatically when its ring
modulus is NTT-friendly (see :meth:`NegacyclicNtt.for_modulus`), which the
``FheParams.ntt_friendly`` constructor arranges.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24 (plenty for our moduli)."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_prime(n: int, bits: int) -> int:
    """Smallest prime ``q`` with ``q ≡ 1 (mod 2n)`` and ``q >= 2^(bits-1)``.

    Args:
        n: Ring degree (power of two).
        bits: Approximate bit size of the desired modulus.
    """
    if n < 2 or (n & (n - 1)):
        raise ConfigurationError("n must be a power of two >= 2")
    if bits < n.bit_length() + 2:
        raise ConfigurationError("bits too small for the requested degree")
    step = 2 * n
    candidate = (1 << (bits - 1)) // step * step + 1
    while True:
        if candidate > 1 and _is_probable_prime(candidate):
            return candidate
        candidate += step


def _find_generator_of_order(order: int, modulus: int) -> int:
    """An element of exact multiplicative order ``order`` mod prime ``modulus``."""
    group_order = modulus - 1
    if group_order % order != 0:
        raise ConfigurationError("order does not divide the group order")
    cofactor = group_order // order
    for base in range(2, 1000):
        candidate = pow(base, cofactor, modulus)
        if candidate == 1:
            continue
        # Exact order check: candidate^(order/p) != 1 for prime p | order.
        # order is a power of two here, so checking order/2 suffices.
        if pow(candidate, order // 2, modulus) != 1:
            return candidate
    raise ConfigurationError("no generator found (modulus not NTT-friendly?)")


class NegacyclicNtt:
    """Precomputed NTT tables for ``Z_q[x]/(x^n + 1)`` with prime ``q``."""

    def __init__(self, n: int, q: int) -> None:
        if n < 2 or (n & (n - 1)):
            raise ConfigurationError("n must be a power of two >= 2")
        if (q - 1) % (2 * n) != 0:
            raise ConfigurationError(f"q={q} is not NTT-friendly for n={n}")
        if not _is_probable_prime(q):
            raise ConfigurationError(f"q={q} must be prime for the NTT")
        self.n = n
        self.q = q
        # ψ is a primitive 2n-th root of unity; ω = ψ² the n-th root.
        self.psi = _find_generator_of_order(2 * n, q)
        self.psi_inv = pow(self.psi, q - 2, q)
        self.n_inv = pow(n, q - 2, q)
        # Twist tables: ψ^i (forward), ψ^-i (inverse), in natural order.
        self._psi_pow = [pow(self.psi, i, q) for i in range(n)]
        self._psi_inv_pow = [pow(self.psi_inv, i, q) for i in range(n)]
        omega = pow(self.psi, 2, q)
        omega_inv = pow(omega, q - 2, q)
        self._omega_pow = self._stage_roots(omega)
        self._omega_inv_pow = self._stage_roots(omega_inv)

    _CACHE: dict[tuple[int, int], "NegacyclicNtt"] = {}

    @classmethod
    def for_modulus(cls, n: int, q: int) -> "NegacyclicNtt | None":
        """A cached instance, or ``None`` when ``q`` is not NTT-friendly."""
        key = (n, q)
        if key not in cls._CACHE:
            try:
                cls._CACHE[key] = cls(n, q)
            except ConfigurationError:
                cls._CACHE[key] = None  # type: ignore[assignment]
        return cls._CACHE[key]

    def _stage_roots(self, omega: int) -> list[list[int]]:
        """Per-stage twiddle tables for the iterative Cooley-Tukey NTT."""
        stages = []
        length = 2
        while length <= self.n:
            w = pow(omega, self.n // length, self.q)
            row = [1] * (length // 2)
            for i in range(1, length // 2):
                row[i] = row[i - 1] * w % self.q
            stages.append(row)
            length *= 2
        return stages

    def _transform(self, values: list[int], stage_tables: list[list[int]]) -> list[int]:
        q = self.q
        n = self.n
        out = list(values)
        # Bit-reversal permutation.
        j = 0
        for i in range(1, n):
            bit = n >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                out[i], out[j] = out[j], out[i]
        length = 2
        for table in stage_tables:
            half = length // 2
            for start in range(0, n, length):
                for i in range(half):
                    w = table[i]
                    a = out[start + i]
                    b = out[start + i + half] * w % q
                    out[start + i] = (a + b) % q
                    out[start + i + half] = (a - b) % q
            length *= 2
        return out

    def forward(self, coeffs: list[int]) -> list[int]:
        """Negacyclic forward NTT: twist by ψ^i, then plain NTT."""
        if len(coeffs) != self.n:
            raise ConfigurationError(f"expected {self.n} coefficients")
        twisted = [c * p % self.q for c, p in zip(coeffs, self._psi_pow)]
        return self._transform(twisted, self._omega_pow)

    def inverse(self, values: list[int]) -> list[int]:
        """Inverse NTT, untwist by ψ^-i, scale by n^-1."""
        if len(values) != self.n:
            raise ConfigurationError(f"expected {self.n} values")
        plain = self._transform(values, self._omega_inv_pow)
        return [
            v * self.n_inv % self.q * p % self.q
            for v, p in zip(plain, self._psi_inv_pow)
        ]

    def multiply(self, a: list[int], b: list[int]) -> list[int]:
        """Negacyclic product of coefficient vectors mod ``q``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse([x * y % self.q for x, y in zip(fa, fb)])


def negacyclic_convolve_ntt(a: list[int], b: list[int], q: int) -> list[int]:
    """Fast negacyclic product mod an NTT-friendly prime ``q``.

    Raises:
        ConfigurationError: ``q`` is not usable for this degree.
    """
    ntt = NegacyclicNtt.for_modulus(len(a), q)
    if ntt is None:
        raise ConfigurationError(f"q={q} is not NTT-friendly for n={len(a)}")
    return ntt.multiply([x % q for x in a], [x % q for x in b])


__all__ = ["find_ntt_prime", "NegacyclicNtt", "negacyclic_convolve_ntt"]
