"""Label codec for LBL-ORTOA (paper §5 and appendix §10).

LBL-ORTOA represents a plaintext value by one secret label per *group* of
``y`` plaintext bits (``y = 1`` is the base protocol of §5; ``y = 2`` is the
space-optimized optimum of §10.1).  A label is a deterministic PRF output

    ``label = PRF(key, group_index, group_value, access_counter)``

so the proxy can regenerate the labels currently stored at the server from
nothing but the object's key and its access counter.  This module owns:

* bit/group packing between ``bytes`` values and group-value tuples,
* label derivation for one group or a whole value,
* inversion (labels back to plaintext) used by the proxy after a read,
* the point-and-permute bits of §10.2.

The batch entry points (:meth:`LabelCodec.labels_for_groups`,
:meth:`LabelCodec.permute_offsets`, :meth:`LabelCodec.decrypt_indices`)
derive everything an access needs in one pass over a pre-encoded PRF prefix;
outputs are byte-identical to the scalar methods (golden-vector pinned), so
callers can mix tiers freely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import sha256_lanes as _lanes
from repro.crypto.prf import Prf, encode_components, hmac_compressions
from repro.errors import ConfigurationError, TamperDetectedError

try:  # numpy accelerates the batched decode; the dict path always works
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None  # type: ignore[assignment]

#: Minimum candidate-table size (groups × 2^y) before the matrix decode in
#: :meth:`LabelCodec.decode_from_candidates` beats the dict scan.  Pure
#: array assembly — no hashing — so this is independent of the lane-engine
#: calibration; ``REPRO_NO_VECTOR`` still pins the dict path via
#: :func:`repro.crypto.sha256_lanes.enabled`.
_MATRIX_DECODE_MIN = 256


def value_to_groups(value: bytes, group_bits: int) -> tuple[int, ...]:
    """Split ``value`` into big-endian groups of ``group_bits`` bits each.

    The final group is zero-padded on the right when ``8*len(value)`` is not
    divisible by ``group_bits`` (paper §10.1 pads with a sentinel; zero bits
    are equivalent here because the value length is fixed and known).
    """
    if group_bits < 1:
        raise ConfigurationError("group_bits must be >= 1")
    total_bits = len(value) * 8
    as_int = int.from_bytes(value, "big")
    num_groups = (total_bits + group_bits - 1) // group_bits
    padded_bits = num_groups * group_bits
    as_int <<= padded_bits - total_bits
    mask = (1 << group_bits) - 1
    return tuple(
        (as_int >> (padded_bits - (i + 1) * group_bits)) & mask for i in range(num_groups)
    )


def groups_to_value(groups: tuple[int, ...] | list[int], group_bits: int, value_len: int) -> bytes:
    """Inverse of :func:`value_to_groups` for a value of ``value_len`` bytes."""
    if group_bits < 1:
        raise ConfigurationError("group_bits must be >= 1")
    total_bits = value_len * 8
    num_groups = (total_bits + group_bits - 1) // group_bits
    if len(groups) != num_groups:
        raise ConfigurationError(f"expected {num_groups} groups, got {len(groups)}")
    as_int = 0
    for g in groups:
        if not 0 <= g < (1 << group_bits):
            raise ConfigurationError(f"group value {g} out of range for y={group_bits}")
        as_int = (as_int << group_bits) | g
    padded_bits = num_groups * group_bits
    as_int >>= padded_bits - total_bits
    return as_int.to_bytes(value_len, "big")


@dataclass(frozen=True, slots=True)
class StoredLabel:
    """What the server stores per group: the label, plus (optionally) the
    point-and-permute decryption bits telling it which table entry to open on
    the *next* access (§10.2)."""

    label: bytes
    decrypt_index: int | None = None


class LabelCodec:
    """Derives, encodes, and inverts LBL-ORTOA labels for fixed-length values.

    Args:
        label_prf: The keyed PRF used for label derivation (from
            :class:`~repro.crypto.keys.KeyChain`).
        permute_prf: PRF producing the per-access random permutation offsets
            (the ``r1 r2`` bits of §10.2).  Only needed when
            ``point_and_permute`` deployments are used, but always accepted.
        value_len: Fixed plaintext length in bytes.
        group_bits: ``y`` — plaintext bits represented by one label.
    """

    def __init__(
        self,
        label_prf: Prf,
        permute_prf: Prf,
        *,
        value_len: int,
        group_bits: int = 1,
    ) -> None:
        if value_len <= 0:
            raise ConfigurationError("value_len must be positive")
        if group_bits < 1:
            raise ConfigurationError("group_bits must be >= 1")
        self._label_prf = label_prf
        self._permute_prf = permute_prf
        self.value_len = value_len
        self.group_bits = group_bits
        self.table_size = 1 << group_bits
        self.num_groups = (value_len * 8 + group_bits - 1) // group_bits
        self.label_len = label_prf.out_bytes

    # ------------------------------------------------------------------ #
    # Label derivation
    # ------------------------------------------------------------------ #

    def label(self, key: str, index: int, group_value: int, counter: int) -> bytes:
        """The secret label for ``group_value`` at ``index`` under ``counter``."""
        if not 0 <= group_value < self.table_size:
            raise ConfigurationError(
                f"group value {group_value} out of range for y={self.group_bits}"
            )
        return self._label_prf.evaluate("label", key, index, group_value, counter)

    def labels_for_group(self, key: str, index: int, counter: int) -> list[bytes]:
        """All ``2^y`` candidate labels for one group (proxy-side, §5.2 1.2)."""
        return [self.label(key, index, v, counter) for v in range(self.table_size)]

    def encode_value(self, key: str, value: bytes, counter: int) -> list[bytes]:
        """Labels the server should store for ``value`` at access ``counter``."""
        if len(value) != self.value_len:
            raise ConfigurationError(
                f"value must be exactly {self.value_len} bytes, got {len(value)}"
            )
        groups = value_to_groups(value, self.group_bits)
        ctx = self._label_prf.context("label", key)
        enc = encode_components
        enc_ct = enc(counter)
        return ctx.evaluate_tails(
            [enc(i) + enc(g) + enc_ct for i, g in enumerate(groups)]
        )

    def labels_for_groups(self, key: str, counter: int) -> list[list[bytes]]:
        """All ``num_groups × 2^y`` candidate labels for one access, batched.

        Row ``i`` equals :meth:`labels_for_group`\\ ``(key, i, counter)``;
        the whole table is derived via one pre-encoded PRF prefix instead of
        ``num_groups * 2^y`` independent :meth:`label` calls.
        """
        table_size = self.table_size
        ctx = self._label_prf.context("label", key)
        enc = encode_components
        # The counter and the 2^y group values repeat across the whole batch:
        # encode each exactly once and build the per-label PRF tails by byte
        # concatenation instead of per-tuple encoding.
        tails_by_value = [enc(value) + enc(counter) for value in range(table_size)]
        enc_indices = [enc(index) for index in range(self.num_groups)]
        flat = ctx.evaluate_tails(
            [
                enc_index + tail
                for enc_index in enc_indices
                for tail in tails_by_value
            ]
        )
        return [
            flat[start : start + table_size]
            for start in range(0, len(flat), table_size)
        ]

    def labels_for_epochs(
        self, epochs: "list[tuple[str, int]]"
    ) -> "list[list[list[bytes]]]":
        """Candidate label tables for many ``(key, counter)`` epochs, fused.

        Entry ``e`` equals :meth:`labels_for_groups`\\ ``(*epochs[e])`` —
        byte-identical, because the per-key PRF context is just a pre-encoded
        prefix: evaluating an empty-prefix context on fully-encoded tails
        hashes exactly the same messages.  The point is the dispatch shape:
        *one* :meth:`~repro.crypto.prf.PrfContext.evaluate_tails` call covers
        every epoch in the batch, so eight coalesced accesses fill the
        8-wide SHA-256 lanes instead of each running alone (and the ledger
        meters the identical call/compression counts either way).
        """
        table_size = self.table_size
        num_groups = self.num_groups
        ctx = self._label_prf.context()
        enc = encode_components
        tails: list[bytes] = []
        for key, counter in epochs:
            head = enc("label", key)
            tails_by_value = [enc(value) + enc(counter) for value in range(table_size)]
            tails += [
                head + enc(index) + tail
                for index in range(num_groups)
                for tail in tails_by_value
            ]
        flat = ctx.evaluate_tails(tails)
        per_epoch = num_groups * table_size
        return [
            [
                flat[base + start : base + start + table_size]
                for start in range(0, per_epoch, table_size)
            ]
            for base in range(0, len(flat), per_epoch)
        ]

    def permute_offsets_for_epochs(
        self, epochs: "list[tuple[str, int]]"
    ) -> "list[list[int]]":
        """Batched :meth:`permute_offsets` across many epochs, fused.

        Entry ``e`` equals :meth:`permute_offsets`\\ ``(*epochs[e])``; one
        empty-prefix ``evaluate_tails`` serves all epochs (see
        :meth:`labels_for_epochs` for why the outputs are byte-identical).
        """
        table_size = self.table_size
        num_groups = self.num_groups
        ctx = self._permute_prf.context()
        enc = encode_components
        tails: list[bytes] = []
        for key, counter in epochs:
            head = enc("permute", key)
            enc_ct = enc(counter)
            tails += [head + enc(index) + enc_ct for index in range(num_groups)]
        flat = ctx.evaluate_tails(tails)
        return [
            [
                int.from_bytes(raw, "big") % table_size
                for raw in flat[base : base + num_groups]
            ]
            for base in range(0, len(flat), num_groups)
        ]

    def derivation_cost(
        self, key: str, counter: int, *, offsets: bool = False
    ) -> tuple[int, int]:
        """``(prf_calls, sha256_compressions)`` of one epoch's derivation.

        Predicts exactly what :meth:`labels_for_groups`\\ ``(key, counter)``
        — plus :meth:`permute_offsets` when ``offsets`` is set — costs, by
        re-deriving the encoded message lengths the PRF would hash.  This is
        the single source of truth shared by the analytic cost model
        (:mod:`repro.analysis.costmodel`) and the process-pool ledger hook
        (:class:`~repro.core.lbl.procpool.ProcessCryptoPool`), whose workers
        run the real derivation out-of-process where the in-PRF meters can't
        reach the parent's registry.
        """
        enc = encode_components
        enc_ct_len = len(enc(counter))
        label_head = 4 + len(enc("label", key))
        label_out = self.label_len
        value_lens = [len(enc(value)) for value in range(self.table_size)]
        calls = self.num_groups * self.table_size
        compressions = 0
        for index in range(self.num_groups):
            index_len = len(enc(index))
            for value_len in value_lens:
                compressions += hmac_compressions(
                    label_head + index_len + value_len + enc_ct_len, label_out
                )
        if offsets:
            permute_head = 4 + len(enc("permute", key))
            permute_out = self._permute_prf.out_bytes
            calls += self.num_groups
            for index in range(self.num_groups):
                compressions += hmac_compressions(
                    permute_head + len(enc(index)) + enc_ct_len, permute_out
                )
        return calls, compressions

    # ------------------------------------------------------------------ #
    # Inversion (proxy decodes the server's response after a read)
    # ------------------------------------------------------------------ #

    def decode_labels(self, key: str, labels: list[bytes], counter: int) -> bytes:
        """Recover the plaintext value from per-group labels.

        Also serves as the tamper check of §5.4: a label matching none of the
        ``2^y`` candidates proves the server (or channel) corrupted data.

        Raises:
            TamperDetectedError: if any label is not a valid candidate.
        """
        if len(labels) != self.num_groups:
            raise ConfigurationError(
                f"expected {self.num_groups} labels, got {len(labels)}"
            )
        return self.decode_from_candidates(self.labels_for_groups(key, counter), labels)

    def decode_from_candidates(
        self,
        candidate_rows: list[list[bytes]],
        labels: list[bytes],
        *,
        blob: bytes | None = None,
    ) -> bytes:
        """:meth:`decode_labels` against an already-derived candidate table.

        Lets callers that still hold the epoch's label table (e.g. the
        proxy's label cache) skip the PRF re-derivation entirely.  Past
        ``_MATRIX_DECODE_MIN`` total candidates (and with numpy importable)
        the match runs as one whole-table array comparison instead of a
        per-group dict scan — same verdicts, same first-failing-group error.

        Args:
            candidate_rows: ``num_groups`` rows of ``2^y`` candidate labels.
            blob: Optional pre-joined candidate bytes (group-major, as the
                label cache stores them) so the matrix path skips the join.

        Raises:
            TamperDetectedError: if any label is not a valid candidate.
        """
        if len(labels) != self.num_groups or len(candidate_rows) != self.num_groups:
            raise ConfigurationError(
                f"expected {self.num_groups} labels, got {len(labels)}"
            )
        num_groups = self.num_groups
        table_size = self.table_size
        if (
            _np is not None
            and _lanes.enabled()
            and num_groups * table_size >= _MATRIX_DECODE_MIN
        ):
            label_len = self.label_len
            if blob is None:
                blob = b"".join(
                    [label for row in candidate_rows for label in row]
                )
            try:
                cand = _np.frombuffer(blob, dtype=_np.uint8).reshape(
                    num_groups, table_size, label_len
                )
                resp = _np.frombuffer(b"".join(labels), dtype=_np.uint8).reshape(
                    num_groups, 1, label_len
                )
            except ValueError:
                pass  # ragged label lengths: the dict scan reports tampering
            else:
                matches = (cand == resp).all(axis=2)
                per_group = matches.any(axis=1)
                if not per_group.all():
                    index = int(_np.argmin(per_group))
                    raise TamperDetectedError(
                        f"label at group {index} matches no candidate: "
                        "data was tampered"
                    )
                return groups_to_value(
                    matches.argmax(axis=1).tolist(),
                    self.group_bits,
                    self.value_len,
                )
        groups: list[int] = []
        for index, stored in enumerate(labels):
            # Candidate-set lookup: 2^y candidates per group, resolved via a
            # dict built from the batch derivation (no per-group list.index).
            lookup = {label: value for value, label in enumerate(candidate_rows[index])}
            value = lookup.get(stored)
            if value is None:
                raise TamperDetectedError(
                    f"label at group {index} matches no candidate: data was tampered"
                )
            groups.append(value)
        return groups_to_value(groups, self.group_bits, self.value_len)

    # ------------------------------------------------------------------ #
    # Point-and-permute bits (§10.2)
    # ------------------------------------------------------------------ #

    def permute_offset(self, key: str, index: int, counter: int) -> int:
        """The per-access random offset ``r`` linking table slots to labels.

        Derived from a PRF over ``(key, index, counter)`` exactly as the paper
        suggests, so the proxy never stores it.
        """
        raw = self._permute_prf.evaluate("permute", key, index, counter)
        return int.from_bytes(raw, "big") % self.table_size

    def decrypt_index(self, key: str, index: int, group_value: int, counter: int) -> int:
        """Which table slot the server must open at access ``counter``.

        The slot for the label of ``group_value`` is ``group_value XOR r``
        (§10.2's ``d1 d2 = b1 b2 ⊕ r1 r2``, generalized to ``y`` bits).
        """
        return group_value ^ self.permute_offset(key, index, counter)

    def permute_offsets(self, key: str, counter: int) -> list[int]:
        """Per-group permute offsets for one access, batched.

        Entry ``i`` equals :meth:`permute_offset`\\ ``(key, i, counter)``.
        One pre-encoded PRF prefix serves all ``num_groups`` offsets — and,
        because the offset of a group is shared by all its table slots, one
        PRF call per group replaces the ``2^y`` redundant
        :meth:`decrypt_index` derivations of the scalar path.
        """
        table_size = self.table_size
        ctx = self._permute_prf.context("permute", key)
        enc = encode_components
        enc_ct = enc(counter)
        return [
            int.from_bytes(raw, "big") % table_size
            for raw in ctx.evaluate_tails(
                [enc(index) + enc_ct for index in range(self.num_groups)]
            )
        ]

    def decrypt_indices(
        self, key: str, groups: "tuple[int, ...] | list[int]", counter: int
    ) -> list[int]:
        """Batched :meth:`decrypt_index` for one group value per group.

        Args:
            key: The accessed datastore key.
            groups: The group value occupying each group (``num_groups``
                entries).
            counter: Label epoch.
        """
        if len(groups) != self.num_groups:
            raise ConfigurationError(
                f"expected {self.num_groups} group values, got {len(groups)}"
            )
        offsets = self.permute_offsets(key, counter)
        return [g ^ off for g, off in zip(groups, offsets)]


__all__ = [
    "LabelCodec",
    "StoredLabel",
    "value_to_groups",
    "groups_to_value",
]
