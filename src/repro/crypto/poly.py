"""Negacyclic polynomial ring arithmetic for the BFV-style FHE scheme.

Elements live in ``R_q = Z_q[x] / (x^n + 1)`` with ``n`` a power of two.
Coefficients are plain Python integers so the modulus ``q`` can be hundreds of
bits without overflow; multiplication is the schoolbook negacyclic convolution
(O(n^2)), which is plenty for the paper-scale experiments (§3 needs only a
handful of accesses before noise exhausts the scheme anyway).

Two views of an element are used by the FHE layer:

* reduced mod ``q`` into ``[0, q)`` — the canonical stored form,
* *centered lift* into ``(-q/2, q/2]`` — required by BFV's scale-and-round
  multiplication and by noise measurement.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True, slots=True)
class RingParams:
    """Parameters of ``R_q``: degree ``n`` (power of two) and modulus ``q``."""

    n: int
    q: int

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.n):
            raise ConfigurationError("ring degree n must be a power of two")
        if self.q < 2:
            raise ConfigurationError("modulus q must be >= 2")


class Poly:
    """An element of ``R_q``, immutable once constructed.

    Args:
        params: Ring parameters.
        coeffs: At most ``n`` integer coefficients, low degree first; reduced
            mod ``q`` on construction.
    """

    __slots__ = ("params", "coeffs")

    def __init__(self, params: RingParams, coeffs: list[int] | tuple[int, ...]) -> None:
        if len(coeffs) > params.n:
            raise ConfigurationError(f"too many coefficients: {len(coeffs)} > n={params.n}")
        full = list(coeffs) + [0] * (params.n - len(coeffs))
        q = params.q
        object.__setattr__(self, "params", params)
        object.__setattr__(self, "coeffs", tuple(c % q for c in full))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Poly is immutable")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def zero(params: RingParams) -> "Poly":
        """The additive identity of the ring."""
        return Poly(params, [])

    @staticmethod
    def constant(params: RingParams, value: int) -> "Poly":
        """The constant polynomial ``value``."""
        return Poly(params, [value])

    @staticmethod
    def random_uniform(params: RingParams) -> "Poly":
        """Uniformly random element of ``R_q`` (the mask ``a`` in encryption)."""
        return Poly(params, [secrets.randbelow(params.q) for _ in range(params.n)])

    @staticmethod
    def random_ternary(params: RingParams) -> "Poly":
        """Random polynomial with coefficients in {-1, 0, 1} (secret keys)."""
        return Poly(params, [secrets.randbelow(3) - 1 for _ in range(params.n)])

    @staticmethod
    def random_error(params: RingParams, bound: int) -> "Poly":
        """Small-noise polynomial with coefficients uniform in [-bound, bound]."""
        if bound < 0:
            raise ConfigurationError("error bound must be non-negative")
        width = 2 * bound + 1
        return Poly(params, [secrets.randbelow(width) - bound for _ in range(params.n)])

    # ------------------------------------------------------------------ #
    # Ring operations
    # ------------------------------------------------------------------ #

    def _check_same_ring(self, other: "Poly") -> None:
        if self.params != other.params:
            raise ConfigurationError("polynomials belong to different rings")

    def __add__(self, other: "Poly") -> "Poly":
        self._check_same_ring(other)
        return Poly(self.params, [a + b for a, b in zip(self.coeffs, other.coeffs)])

    def __sub__(self, other: "Poly") -> "Poly":
        self._check_same_ring(other)
        return Poly(self.params, [a - b for a, b in zip(self.coeffs, other.coeffs)])

    def __neg__(self) -> "Poly":
        return Poly(self.params, [-a for a in self.coeffs])

    def __mul__(self, other: "Poly") -> "Poly":
        self._check_same_ring(other)
        # Fast path: O(n log n) NTT multiplication when the modulus is an
        # NTT-friendly prime (q ≡ 1 mod 2n); schoolbook otherwise.
        from repro.crypto.ntt import NegacyclicNtt

        ntt = NegacyclicNtt.for_modulus(self.params.n, self.params.q)
        if ntt is not None:
            return Poly(self.params, ntt.multiply(list(self.coeffs), list(other.coeffs)))
        return Poly(self.params, negacyclic_convolve(list(self.coeffs), list(other.coeffs)))

    def scale(self, factor: int) -> "Poly":
        """Multiply every coefficient by an integer ``factor``."""
        return Poly(self.params, [a * factor for a in self.coeffs])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.params == other.params and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.params, self.coeffs))

    def __repr__(self) -> str:
        nonzero = sum(1 for c in self.coeffs if c)
        return f"Poly(n={self.params.n}, nonzero={nonzero})"

    # ------------------------------------------------------------------ #
    # Lifts
    # ------------------------------------------------------------------ #

    def centered(self) -> list[int]:
        """Coefficients lifted to the centered interval ``(-q/2, q/2]``."""
        q = self.params.q
        half = q // 2
        return [c - q if c > half else c for c in self.coeffs]

    def inf_norm(self) -> int:
        """Infinity norm of the centered lift — the noise magnitude measure."""
        return max(abs(c) for c in self.centered())


def negacyclic_convolve(a: list[int], b: list[int]) -> list[int]:
    """Schoolbook product of ``a`` and ``b`` reduced mod ``x^n + 1``.

    Inputs must have equal length ``n``; the reduction folds coefficient
    ``n + k`` back onto ``k`` with a sign flip.  Works over plain integers
    (no modulus) so the FHE layer can convolve centered lifts exactly.
    """
    n = len(a)
    if len(b) != n:
        raise ConfigurationError("operands must have equal length")
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj == 0:
                continue
            k = i + j
            if k < n:
                out[k] += ai * bj
            else:
                out[k - n] -= ai * bj
    return out


__all__ = ["RingParams", "Poly", "negacyclic_convolve"]
