"""A BFV-style somewhat-homomorphic encryption scheme with noise tracking.

This is the substrate for FHE-ORTOA (paper §3).  The paper prototyped that
variant on Microsoft SEAL's BFV and found it impractical: the multiplication
in ``Proc(ct_old, ct_new, [c_r, c_w]) = ct_old*c_r + ct_new*c_w`` amplifies
noise so fast that "within about 10 accesses ... the noise value grew too
large for the FHE decryption to succeed".  To reproduce that *finding* rather
than assume it, this module implements a real (if educational) RLWE scheme:

* secret-key BFV over ``R_q = Z_q[x]/(x^n + 1)`` with Δ-scaling,
* homomorphic addition,
* homomorphic multiplication via the tensor product with BFV's
  scale-and-round — and **no relinearization**, so ciphertexts grow by one
  component per multiplication, exactly the effect that makes repeated
  oblivious accesses balloon in both noise and size,
* an exact per-ciphertext noise measurement (:meth:`FheScheme.noise_budget`)
  and :meth:`FheScheme.decrypt_checked`, which raises
  :class:`~repro.errors.NoiseBudgetExhausted` once decryption can no longer
  be trusted.

Security caveat: parameters here are chosen for observable noise dynamics at
laptop scale, not for a production security level.  FHE-ORTOA is evaluated
for *feasibility*, matching the paper's treatment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.crypto.poly import Poly, RingParams, negacyclic_convolve
from repro.errors import ConfigurationError, NoiseBudgetExhausted


@dataclass(frozen=True, slots=True)
class FheParams:
    """Scheme parameters.

    Attributes:
        n: Ring degree (power of two).  Bounds the plaintext capacity: one
            byte per coefficient with the default ``t=256``.
        q_bits: Bit size of the ciphertext modulus ``q = 2**q_bits``
            (ignored when ``q_prime`` is given).
        t: Plaintext modulus; 256 packs one byte per coefficient.
        error_bound: Fresh-encryption noise coefficients are uniform in
            ``[-error_bound, error_bound]``.
        q_prime: Optional explicit prime modulus.  When it is NTT-friendly
            (``q ≡ 1 mod 2n`` — use :meth:`ntt_friendly`), all mod-q ring
            multiplications (encrypt, decrypt, relinearize) run through the
            O(n log n) NTT instead of the schoolbook convolution.
    """

    n: int = 256
    q_bits: int = 120
    t: int = 256
    error_bound: int = 3
    q_prime: int | None = None

    def __post_init__(self) -> None:
        if self.t < 2:
            raise ConfigurationError("plaintext modulus t must be >= 2")
        if self.q.bit_length() < 2 * math.ceil(math.log2(self.t)):
            raise ConfigurationError("q must be much larger than t")
        if self.error_bound < 1:
            raise ConfigurationError("error_bound must be >= 1")

    @classmethod
    def ntt_friendly(cls, n: int = 256, q_bits: int = 120, t: int = 256,
                     error_bound: int = 3) -> "FheParams":
        """Parameters with a prime modulus enabling NTT multiplication."""
        from repro.crypto.ntt import find_ntt_prime

        return cls(n=n, q_bits=q_bits, t=t, error_bound=error_bound,
                   q_prime=find_ntt_prime(n, q_bits))

    @property
    def q(self) -> int:
        """The ciphertext modulus."""
        return self.q_prime if self.q_prime is not None else 1 << self.q_bits

    @property
    def q_bit_width(self) -> int:
        """Actual bit length of the modulus (drives serialization width)."""
        return self.q.bit_length()

    @property
    def delta(self) -> int:
        """The Δ = floor(q / t) message scaling factor."""
        return self.q // self.t

    @property
    def ring(self) -> RingParams:
        """Ring parameters for ciphertext components."""
        return RingParams(self.n, self.q)

    @property
    def component_bytes(self) -> int:
        """Serialized size of one ciphertext component."""
        return self.n * ((self.q_bit_width + 7) // 8)


@dataclass(frozen=True, slots=True)
class FheCiphertext:
    """A ciphertext: a tuple of ring elements decrypted against (1, s, s², …).

    ``mul_depth`` records how many homomorphic multiplications contributed to
    this ciphertext — the quantity the §3.3 experiment sweeps.
    ``noise_log2`` is an analytically tracked upper bound (in bits) on the
    infinity norm of the ciphertext noise; like SEAL's invariant noise budget
    it is maintained through every homomorphic operation so exhaustion can be
    detected without (and before) a failed decryption.
    """

    components: tuple[Poly, ...]
    params: FheParams
    mul_depth: int = 0
    noise_log2: float = 0.0

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise ConfigurationError("a ciphertext needs at least 2 components")

    @property
    def size(self) -> int:
        """Number of ring components (2 when fresh, grows with each multiply)."""
        return len(self.components)

    @property
    def size_bytes(self) -> int:
        """Serialized byte size — drives the communication model of §3.2.2."""
        return self.size * self.params.component_bytes

    def to_bytes(self) -> bytes:
        """Serialize: 2-byte component count, 4-byte depth, 8-byte noise
        bound, then each component's coefficients at fixed width."""
        import struct

        header = struct.pack(">HId", self.size, self.mul_depth, self.noise_log2)
        width = (self.params.q_bit_width + 7) // 8
        body = b"".join(
            coeff.to_bytes(width, "big")
            for comp in self.components
            for coeff in comp.coeffs
        )
        return header + body

    @classmethod
    def from_bytes(cls, params: FheParams, data: bytes) -> "FheCiphertext":
        """Deserialize a ciphertext (inverse of :meth:`to_bytes`)."""
        import struct

        header_len = struct.calcsize(">HId")
        if len(data) < header_len:
            raise ConfigurationError("truncated FHE ciphertext header")
        size, depth, noise = struct.unpack(">HId", data[:header_len])
        width = (params.q_bit_width + 7) // 8
        expected = header_len + size * params.n * width
        if len(data) != expected:
            raise ConfigurationError(
                f"FHE ciphertext length mismatch: {len(data)} != {expected}"
            )
        pos = header_len
        components = []
        for _ in range(size):
            coeffs = []
            for _ in range(params.n):
                coeffs.append(int.from_bytes(data[pos:pos + width], "big"))
                pos += width
            components.append(Poly(params.ring, coeffs))
        return cls(tuple(components), params, depth, noise)


class FheSecretKey:
    """Holds the ternary secret ``s`` and caches its powers for decryption."""

    def __init__(self, params: FheParams) -> None:
        self.params = params
        self._s = Poly.random_ternary(params.ring)
        self._powers: list[Poly] = [Poly.constant(params.ring, 1), self._s]

    def power(self, i: int) -> Poly:
        """``s^i`` in ``R_q`` (cached)."""
        while len(self._powers) <= i:
            self._powers.append(self._powers[-1] * self._s)
        return self._powers[i]


class RelinearizationKey:
    """Key-switching material turning an ``s²`` component back into ``(1, s)``.

    This is the standard BFV relinearization key with digit decomposition:
    for base ``T = 2^decomp_bits`` and ``k = ceil(q_bits / decomp_bits)``
    digits, piece ``i`` is ``(b_i, a_i)`` with ``b_i = -a_i·s + e_i + T^i·s²``.
    The key reveals nothing about ``s`` beyond RLWE samples, so handing it to
    the untrusted server (which performs relinearization) is safe.

    Relinearization bounds ciphertexts at two components — fixing the *size*
    blow-up of repeated FHE-ORTOA accesses — but each application adds
    ``≈ k·n·T·e`` noise and does nothing about the multiplicative noise
    growth, which is why the §3.3 exhaustion persists (the ablation
    benchmark charts exactly this).
    """

    def __init__(self, sk: FheSecretKey, decomp_bits: int = 8) -> None:
        if not 1 <= decomp_bits <= 32:
            raise ConfigurationError("decomp_bits must be in [1, 32]")
        self.params = sk.params
        self.decomp_bits = decomp_bits
        self.num_digits = (self.params.q_bit_width + decomp_bits - 1) // decomp_bits
        ring = self.params.ring
        s2 = sk.power(2)
        self.pieces: list[tuple[Poly, Poly]] = []
        for i in range(self.num_digits):
            a = Poly.random_uniform(ring)
            e = Poly.random_error(ring, self.params.error_bound)
            b = s2.scale(1 << (decomp_bits * i)) + e - (a * sk.power(1))
            self.pieces.append((b, a))

    @property
    def noise_log2(self) -> float:
        """Upper bound (bits) on the noise one relinearization adds."""
        return (
            math.log2(self.num_digits)
            + math.log2(self.params.n)
            + self.decomp_bits
            + math.log2(self.params.error_bound)
        )


class FheScheme:
    """Encrypt/decrypt/evaluate interface used by FHE-ORTOA.

    One instance owns one secret key; in the paper's proxy-less deployment the
    clients (or a gateway) hold this object while the server only ever touches
    :class:`FheCiphertext` values via :meth:`add` and :meth:`multiply`, which
    need no key material.
    """

    def __init__(self, params: FheParams | None = None) -> None:
        self.params = params or FheParams()
        self._sk = FheSecretKey(self.params)

    # ------------------------------------------------------------------ #
    # Plaintext encoding
    # ------------------------------------------------------------------ #

    def encode_bytes(self, value: bytes) -> Poly:
        """Pack a byte string into a plaintext polynomial (one byte/coeff)."""
        if self.params.t != 256:
            raise ConfigurationError("byte packing requires t = 256")
        if len(value) > self.params.n:
            raise ConfigurationError(
                f"value of {len(value)} bytes exceeds ring capacity n={self.params.n}"
            )
        return Poly(self.params.ring, list(value))

    def decode_bytes(self, plaintext: Poly, length: int) -> bytes:
        """Unpack ``length`` bytes from a decrypted plaintext polynomial."""
        coeffs = plaintext.coeffs[:length]
        return bytes(c % self.params.t for c in coeffs)

    # ------------------------------------------------------------------ #
    # Core scheme
    # ------------------------------------------------------------------ #

    def encrypt_poly(self, message: Poly) -> FheCiphertext:
        """Fresh encryption: ``(Δ·m + e - a·s, a)``."""
        ring = self.params.ring
        a = Poly.random_uniform(ring)
        e = Poly.random_error(ring, self.params.error_bound)
        c0 = message.scale(self.params.delta) + e - (a * self._sk.power(1))
        return FheCiphertext(
            (c0, a), self.params, noise_log2=math.log2(self.params.error_bound)
        )

    def encrypt_bytes(self, value: bytes) -> FheCiphertext:
        """Encrypt a byte string (packs one byte per coefficient)."""
        return self.encrypt_poly(self.encode_bytes(value))

    def encrypt_scalar(self, value: int) -> FheCiphertext:
        """Encrypt a small integer as a constant polynomial (the ``c_r``/``c_w``
        selector bits of §3.1)."""
        return self.encrypt_poly(Poly.constant(self.params.ring, value % self.params.t))

    def _phase(self, ct: FheCiphertext) -> Poly:
        """``Σ c_i · s^i`` — the noisy scaled message ``Δm + e`` in ``R_q``."""
        acc = Poly.zero(self.params.ring)
        for i, comp in enumerate(ct.components):
            acc = acc + (comp * self._sk.power(i)) if i else comp
        return acc

    def decrypt_poly(self, ct: FheCiphertext) -> Poly:
        """Round each phase coefficient to the nearest multiple of Δ.

        Silently returns garbage once the noise exceeds Δ/2 — mirroring real
        BFV, where only a noise-budget check tells you the result is unusable.
        """
        q, t = self.params.q, self.params.t
        message = [(_round_div(t * v, q)) % t for v in self._phase(ct).centered()]
        return Poly(RingParams(self.params.n, t), message)

    def decrypt_bytes(self, ct: FheCiphertext, length: int) -> bytes:
        """Decrypt and unpack ``length`` bytes (unchecked; see decrypt_checked)."""
        return self.decode_bytes(self.decrypt_poly(ct), length)

    def decrypt_checked(self, ct: FheCiphertext, length: int) -> bytes:
        """Decrypt, raising if the noise budget is exhausted.

        Raises:
            NoiseBudgetExhausted: the ciphertext noise reached Δ/2, so the
                decryption result cannot be trusted (paper §3.3's failure).
        """
        if self.noise_budget(ct) <= 0:
            raise NoiseBudgetExhausted(
                f"noise budget exhausted after {ct.mul_depth} multiplications"
            )
        return self.decrypt_bytes(ct, length)

    def noise_budget(self, ct: FheCiphertext) -> float:
        """Remaining noise budget in bits: ``log2(Δ/2) - noise_log2``.

        Uses the analytically tracked noise *bound* carried by the ciphertext
        (so no key material is needed).  Positive budget ⇒ decryption is
        guaranteed correct; at or below zero the rounding in
        :meth:`decrypt_poly` may flip message coefficients.
        """
        return math.log2(self.params.delta / 2) - ct.noise_log2

    def measured_noise_budget(self, ct: FheCiphertext) -> float:
        """Diagnostic: budget from the *observed* distance of the phase to the
        nearest Δ-multiple.  Requires the secret key, and saturates near zero
        once the noise wraps, so it cannot detect exhaustion on its own —
        that is exactly why :meth:`noise_budget` tracks an analytic bound.
        """
        delta = self.params.delta
        noise = 0
        for v in self._phase(ct).centered():
            nearest = _round_div(v, delta) * delta
            noise = max(noise, abs(v - nearest))
        if noise == 0:
            return float(self.params.q_bit_width)
        return math.log2(delta / 2) - math.log2(noise)

    # ------------------------------------------------------------------ #
    # Homomorphic evaluation (server side — needs no key material)
    # ------------------------------------------------------------------ #

    @staticmethod
    def add(ct1: FheCiphertext, ct2: FheCiphertext) -> FheCiphertext:
        """Homomorphic addition; pads the shorter ciphertext with zeros."""
        if ct1.params != ct2.params:
            raise ConfigurationError("ciphertexts use different parameters")
        ring = ct1.params.ring
        size = max(ct1.size, ct2.size)
        zero = Poly.zero(ring)
        a = list(ct1.components) + [zero] * (size - ct1.size)
        b = list(ct2.components) + [zero] * (size - ct2.size)
        comps = tuple(x + y for x, y in zip(a, b))
        return FheCiphertext(
            comps,
            ct1.params,
            max(ct1.mul_depth, ct2.mul_depth),
            _log2_sum(ct1.noise_log2, ct2.noise_log2),
        )

    @staticmethod
    def multiply(ct1: FheCiphertext, ct2: FheCiphertext) -> FheCiphertext:
        """Homomorphic multiplication: tensor product with BFV scale-and-round.

        Output has ``size1 + size2 - 1`` components (no relinearization), and
        its noise is roughly the *product* of the operand noises scaled by the
        ring expansion — the super-linear growth behind §3.3.
        """
        if ct1.params != ct2.params:
            raise ConfigurationError("ciphertexts use different parameters")
        params = ct1.params
        q, t = params.q, params.t
        a = [c.centered() for c in ct1.components]
        b = [c.centered() for c in ct2.components]
        out_len = len(a) + len(b) - 1
        acc: list[list[int]] = [[0] * params.n for _ in range(out_len)]
        for i, ai in enumerate(a):
            for j, bj in enumerate(b):
                prod = negacyclic_convolve(ai, bj)
                target = acc[i + j]
                for k, v in enumerate(prod):
                    target[k] += v
        comps = tuple(
            Poly(params.ring, [_round_div(t * c, q) for c in coeffs]) for coeffs in acc
        )
        # Standard BFV multiplication noise bound (all norms in log2 bits):
        #   N' <= n·t·(N1 + N2)  +  n·N1·N2/Δ  +  n·t²/2 (scale-and-round term)
        log_n = math.log2(params.n)
        log_t = math.log2(t)
        cross = log_n + log_t + _log2_sum(ct1.noise_log2, ct2.noise_log2)
        quadratic = log_n + ct1.noise_log2 + ct2.noise_log2 - math.log2(params.delta)
        rounding = log_n + 2 * log_t - 1
        noise = _log2_sum(_log2_sum(cross, quadratic), rounding)
        return FheCiphertext(comps, params, ct1.mul_depth + ct2.mul_depth + 1, noise)


    def make_relin_key(self, decomp_bits: int = 8) -> RelinearizationKey:
        """Produce a relinearization key for this scheme's secret."""
        return RelinearizationKey(self._sk, decomp_bits)

    @staticmethod
    def relinearize(ct: FheCiphertext, rlk: RelinearizationKey) -> FheCiphertext:
        """Reduce a 3-component ciphertext back to 2 components.

        Standard BFV key switching: decompose ``c2`` into base-``T`` digit
        polynomials ``d_i`` and fold ``Σ d_i·(b_i, a_i)`` into ``(c0, c1)``.
        Needs no secret material — the untrusted server runs this.
        """
        if ct.params != rlk.params:
            raise ConfigurationError("ciphertext and key use different parameters")
        if ct.size == 2:
            return ct
        if ct.size != 3:
            raise ConfigurationError(
                f"relinearization handles size-3 ciphertexts, got size {ct.size}"
            )
        c0, c1, c2 = ct.components
        mask = (1 << rlk.decomp_bits) - 1
        ring = ct.params.ring
        for i, (b_i, a_i) in enumerate(rlk.pieces):
            shift = rlk.decomp_bits * i
            digit = Poly(ring, [(coeff >> shift) & mask for coeff in c2.coeffs])
            c0 = c0 + digit * b_i
            c1 = c1 + digit * a_i
        noise = _log2_sum(ct.noise_log2, rlk.noise_log2)
        return FheCiphertext((c0, c1), ct.params, ct.mul_depth, noise)


def _round_div(a: int, b: int) -> int:
    """``round(a / b)`` for integer ``a`` and positive integer ``b``."""
    return (2 * a + b) // (2 * b)


def _log2_sum(a: float, b: float) -> float:
    """``log2(2^a + 2^b)`` computed stably in log space."""
    if a < b:
        a, b = b, a
    return a + math.log2(1.0 + 2.0 ** (b - a))


__all__ = [
    "FheParams",
    "FheCiphertext",
    "FheScheme",
    "FheSecretKey",
    "RelinearizationKey",
]
