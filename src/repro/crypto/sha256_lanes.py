"""Numpy-vectorized SHA-256 / HMAC-SHA256 lane engine.

One pass of :func:`sha256_many` hashes ``N`` equal-length messages in
parallel *lanes*: the eight working variables of the SHA-256 compression
function are ``(N,)`` ``uint32`` arrays, so every rotate/xor/add in the 64
rounds applies to all messages at once.  :func:`hmac_many` layers HMAC on
top, reusing the RFC 2104 trick from :mod:`repro.crypto.prf`: the keyed
inner/outer states are compressed once (per key) and each message then
costs two lane compressions.  Outputs are byte-identical to
``hashlib.sha256`` / ``hmac.new(key, msg, sha256)`` — pinned by the golden
vectors and cross-checked by Hypothesis in ``tests/test_sha256_lanes.py``.

**Calibration, honestly.**  Whether lanes beat the stdlib is a property of
the host, not of the algorithm.  On CPUs with SHA-NI, ``hashlib``'s
OpenSSL backend hashes a 64-byte block in ~100 ns and a full keyed-state
HMAC costs <1 µs of mostly Python overhead; a numpy compression pass needs
~3,000 array ops and cannot win at any lane count (measured ~2 ms per
2,560-lane block on the reference Xeon — see docs/performance.md).  On
hosts without SHA extensions the economics flip for wide batches.
:func:`calibrate` measures both paths once per process and
:func:`use_lanes` then answers "should this batch route through the lane
engine?" — the *calibrated threshold* the batch entry points in
:mod:`repro.crypto.prf` and :mod:`repro.crypto.aead` consult.

Environment switches (read at import, overridable per-process):

* ``REPRO_NO_VECTOR=1``  — hard-disable lane routing (stdlib fallback);
* ``REPRO_VECTOR_THRESHOLD=N`` — skip calibration and route any batch of
  at least ``N`` messages through the lanes (``1`` forces the engine on,
  which CI uses to exercise the lane path end-to-end on any hardware).

Everything degrades gracefully when numpy is absent: ``HAVE_NUMPY`` is
False, :func:`use_lanes` always answers False, and callers fall back to
their stdlib paths.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.obs import _state as _obs
from repro.obs import ledger as _ledger

_BLOCK = 64
_DIGEST_BYTES = 32

#: Lane count used by :func:`calibrate` to compare engines.
_CALIBRATION_LANES = 1024

#: Smallest batch that can amortize numpy dispatch overhead at all; the
#: calibrated threshold is never below this.
_MIN_LANES = 64

if HAVE_NUMPY:
    _K = _np.array(
        [
            0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B,
            0x59F111F1, 0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01,
            0x243185BE, 0x550C7DC3, 0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7,
            0xC19BF174, 0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
            0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA, 0x983E5152,
            0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
            0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC,
            0x53380D13, 0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
            0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3, 0xD192E819,
            0xD6990624, 0xF40E3585, 0x106AA070, 0x19A4C116, 0x1E376C08,
            0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F,
            0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
            0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
        ],
        dtype=_np.uint32,
    )
    _IV = _np.array(
        [
            0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
            0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
        ],
        dtype=_np.uint32,
    )

_IPAD_TRANS = bytes(b ^ 0x36 for b in range(256))
_OPAD_TRANS = bytes(b ^ 0x5C for b in range(256))


# --------------------------------------------------------------------- #
# Routing state
# --------------------------------------------------------------------- #

#: None = not calibrated yet; 0 = lanes never win on this host (stdlib
#: always routes); N > 0 = route batches of at least N lanes.
_threshold: int | None = None
_disabled: bool = os.environ.get("REPRO_NO_VECTOR", "") == "1"


def _env_threshold() -> int | None:
    raw = os.environ.get("REPRO_VECTOR_THRESHOLD", "")
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def enabled() -> bool:
    """True when the lane engine is importable and not hard-disabled."""
    return HAVE_NUMPY and not _disabled


@contextmanager
def lanes_disabled() -> Iterator[None]:
    """Temporarily pin every batch entry point to its stdlib path.

    The benchmark suite uses this to measure the stdlib baselines on hosts
    where calibration would otherwise engage the lanes, and tests use it to
    cover the fallback.  Equivalent to running under ``REPRO_NO_VECTOR=1``.
    """
    global _disabled
    previous = _disabled
    _disabled = True
    try:
        yield
    finally:
        _disabled = previous


def calibrate(force: bool = False) -> int:
    """Measure lanes vs ``hashlib`` once; return the routing threshold.

    Times one :func:`sha256_many` pass and the equivalent keyed-state
    ``hashlib`` loop over :data:`_CALIBRATION_LANES` single-block messages.
    Returns ``0`` when the stdlib wins even at that width (SHA-NI hosts —
    the lanes then never engage on their own), else the batch size at which
    the lane pass's fixed dispatch cost is amortized.  The verdict is
    cached per process; ``REPRO_VECTOR_THRESHOLD`` overrides it entirely.
    """
    global _threshold
    if not HAVE_NUMPY:
        _threshold = 0
        return 0
    if _threshold is not None and not force:
        return _threshold
    env = _env_threshold()
    if env is not None:
        _threshold = env
        return env
    n = _CALIBRATION_LANES
    messages = [i.to_bytes(4, "big") + b"\x5a" * 44 for i in range(n)]
    sha256_many(messages)  # warm the numpy kernels
    t0 = time.perf_counter()
    sha256_many(messages)
    lane_s = time.perf_counter() - t0
    digest = hashlib.sha256
    t0 = time.perf_counter()
    for message in messages:
        digest(message).digest()
    stdlib_s = time.perf_counter() - t0
    if lane_s >= stdlib_s:
        _threshold = 0
    else:
        # The lane pass is roughly fixed-cost up to the calibration width;
        # below the break-even lane count the stdlib loop is cheaper.
        breakeven = int(n * (lane_s / stdlib_s)) + 1
        _threshold = max(_MIN_LANES, breakeven)
    return _threshold


def use_lanes(batch_size: int) -> bool:
    """Should a batch of ``batch_size`` messages route through the lanes?"""
    if batch_size < 1 or not enabled():
        return False
    threshold = _threshold if _threshold is not None else calibrate()
    return threshold > 0 and batch_size >= threshold


# --------------------------------------------------------------------- #
# The compression kernel
# --------------------------------------------------------------------- #


def _compress(state, blocks) -> None:
    """One SHA-256 compression over ``N`` lanes, in place.

    Args:
        state: ``(8, N)`` ``uint32`` working state (updated in place).
        blocks: ``(16, N)`` ``uint32`` big-endian message words.
    """
    np = _np
    n = blocks.shape[1]
    w = np.empty((64, n), dtype=np.uint32)
    w[:16] = blocks
    t1 = np.empty(n, dtype=np.uint32)
    t2 = np.empty(n, dtype=np.uint32)
    s0 = np.empty(n, dtype=np.uint32)
    s1 = np.empty(n, dtype=np.uint32)
    rshift, lshift = np.right_shift, np.left_shift
    bor, bxor, band, badd = np.bitwise_or, np.bitwise_xor, np.bitwise_and, np.add
    for i in range(16, 64):
        x = w[i - 15]  # s0 = rotr(x,7) ^ rotr(x,18) ^ (x >> 3)
        rshift(x, 7, out=t1); lshift(x, 25, out=t2); bor(t1, t2, out=s0)
        rshift(x, 18, out=t1); lshift(x, 14, out=t2); bor(t1, t2, out=t1)
        bxor(s0, t1, out=s0)
        rshift(x, 3, out=t1)
        bxor(s0, t1, out=s0)
        x = w[i - 2]  # s1 = rotr(x,17) ^ rotr(x,19) ^ (x >> 10)
        rshift(x, 17, out=t1); lshift(x, 15, out=t2); bor(t1, t2, out=s1)
        rshift(x, 19, out=t1); lshift(x, 13, out=t2); bor(t1, t2, out=t1)
        bxor(s1, t1, out=s1)
        rshift(x, 10, out=t1)
        bxor(s1, t1, out=s1)
        wi = w[i]
        badd(w[i - 16], s0, out=wi)
        badd(wi, w[i - 7], out=wi)
        badd(wi, s1, out=wi)
    a, b, c, d, e, f, g, h = (state[i].copy() for i in range(8))
    for i in range(64):
        # S1 = rotr(e,6) ^ rotr(e,11) ^ rotr(e,25)
        rshift(e, 6, out=t1); lshift(e, 26, out=t2); bor(t1, t2, out=s1)
        rshift(e, 11, out=t1); lshift(e, 21, out=t2); bor(t1, t2, out=t1)
        bxor(s1, t1, out=s1)
        rshift(e, 25, out=t1); lshift(e, 7, out=t2); bor(t1, t2, out=t1)
        bxor(s1, t1, out=s1)
        # ch = g ^ (e & (f ^ g))
        bxor(f, g, out=t1)
        band(t1, e, out=t1)
        bxor(t1, g, out=t1)
        badd(t1, h, out=t1)
        badd(t1, s1, out=t1)
        badd(t1, _K[i], out=t1)
        badd(t1, w[i], out=t1)  # t1 = h + S1 + ch + K[i] + w[i]
        # S0 = rotr(a,2) ^ rotr(a,13) ^ rotr(a,22)
        rshift(a, 2, out=s0); lshift(a, 30, out=t2); bor(s0, t2, out=s0)
        rshift(a, 13, out=s1); lshift(a, 19, out=t2); bor(s1, t2, out=s1)
        bxor(s0, s1, out=s0)
        rshift(a, 22, out=s1); lshift(a, 10, out=t2); bor(s1, t2, out=s1)
        bxor(s0, s1, out=s0)
        # maj = b ^ ((a ^ b) & (b ^ c))
        bxor(a, b, out=t2)
        bxor(b, c, out=s1)
        band(t2, s1, out=t2)
        bxor(t2, b, out=t2)
        badd(s0, t2, out=t2)  # t2 = S0 + maj
        h, g, f = g, f, e
        e = badd(d, t1)
        d, c, b = c, b, a
        a = badd(t1, t2)
    state[0] += a; state[1] += b; state[2] += c; state[3] += d
    state[4] += e; state[5] += f; state[6] += g; state[7] += h


def _pad_lanes(matrix, total_prefix_bytes: int = 0):
    """SHA-256 pad ``N`` equal-length messages; returns ``(N, W)`` words.

    Args:
        matrix: ``(N, L)`` ``uint8`` raw message lanes.
        total_prefix_bytes: Bytes already absorbed into the starting state
            (e.g. the 64-byte HMAC key block) — included in the encoded
            message length, exactly as a streaming ``hashlib`` update would.
    """
    np = _np
    n, msg_len = matrix.shape
    bit_len = (msg_len + total_prefix_bytes) * 8
    padded_len = ((msg_len + 8) // _BLOCK + 1) * _BLOCK
    buf = np.zeros((n, padded_len), dtype=np.uint8)
    buf[:, :msg_len] = matrix
    buf[:, msg_len] = 0x80
    buf[:, -8:] = np.frombuffer(bit_len.to_bytes(8, "big"), dtype=np.uint8)
    # Big-endian byte quads -> uint32 words without per-word Python work.
    return buf.view(">u4").astype(np.uint32)


def _digest_bytes_from_state(state):
    """``(8, N)`` state -> ``(N, 32)`` big-endian digest bytes."""
    np = _np
    rows = np.ascontiguousarray(state.T).astype(">u4")
    return rows.view(np.uint8).reshape(-1, _DIGEST_BYTES)


def _matrix(messages: Sequence[bytes], length: int):
    np = _np
    return np.frombuffer(b"".join(messages), dtype=np.uint8).reshape(
        len(messages), length
    )


def _run_lanes(matrix, initial_state=None, prefix_bytes: int = 0):
    """Hash ``N`` equal-length lanes; returns ``(N, 32)`` digest bytes."""
    np = _np
    n = matrix.shape[0]
    words = _pad_lanes(matrix, prefix_bytes)
    if initial_state is None:
        state = np.repeat(_IV[:, None], n, axis=1)
    else:
        state = initial_state.copy()
    blocks_per_lane = words.shape[1] // 16
    if _obs.enabled:
        # Informational: compressions the lane engine actually ran.  The
        # canonical ``sha256.compressions`` meter lives in the PRF hooks
        # (engine-independent by design); this one lets ``repro top`` show
        # how much of the work the lanes absorbed.
        _ledger.add_op("sha256.lane_compressions", n * blocks_per_lane)
    for block in range(blocks_per_lane):
        _compress(state, words[:, block * 16 : (block + 1) * 16].T)
    return _digest_bytes_from_state(state)


# --------------------------------------------------------------------- #
# Public batch hashing
# --------------------------------------------------------------------- #


def sha256_many(messages: Sequence[bytes]) -> list[bytes]:
    """``sha256(m)`` for every message, vectorized across lanes.

    Messages may have arbitrary (and differing) lengths; equal-length runs
    are grouped into one lane pass each.  Byte-identical to
    ``hashlib.sha256(m).digest()``.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("sha256_many requires numpy")
    if not messages:
        return []
    out: list[bytes | None] = [None] * len(messages)
    by_len: dict[int, list[int]] = {}
    for index, message in enumerate(messages):
        by_len.setdefault(len(message), []).append(index)
    for length, indices in by_len.items():
        digests = _run_lanes(_matrix([messages[i] for i in indices], length))
        flat = digests.tobytes()
        for row, index in enumerate(indices):
            out[index] = flat[row * _DIGEST_BYTES : (row + 1) * _DIGEST_BYTES]
    return out  # type: ignore[return-value]


def key_state(key: bytes):
    """The lane-engine HMAC key state: ``(2, 8)`` uint32 inner/outer rows.

    Row 0 is the SHA-256 state after compressing ``key ⊕ ipad``, row 1
    after ``key ⊕ opad`` — the same precomputation
    :func:`repro.crypto.prf.hmac_sha256_pair` performs with ``hashlib``
    objects, in the lane engine's representation.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("key_state requires numpy")
    np = _np
    if len(key) > _BLOCK:
        key = hashlib.sha256(key).digest()
    padded = key.ljust(_BLOCK, b"\x00")
    blocks = np.frombuffer(
        padded.translate(_IPAD_TRANS) + padded.translate(_OPAD_TRANS), dtype=np.uint8
    ).reshape(2, _BLOCK)
    state = np.repeat(_IV[:, None], 2, axis=1)
    _compress(state, blocks.view(">u4").astype(np.uint32).T)
    return state.T.copy()


def key_states_many(keys: Sequence[bytes]):
    """Per-key HMAC states for a batch: ``(inner (N, 8), outer (N, 8))``.

    All keys must be at most one block (64 bytes) long — true for every
    LBL label — longer keys take the scalar :func:`key_state` path.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("key_states_many requires numpy")
    np = _np
    n = len(keys)
    padded = [
        (key if len(key) <= _BLOCK else hashlib.sha256(key).digest()).ljust(
            _BLOCK, b"\x00"
        )
        for key in keys
    ]
    both = b"".join(p.translate(_IPAD_TRANS) for p in padded) + b"".join(
        p.translate(_OPAD_TRANS) for p in padded
    )
    blocks = np.frombuffer(both, dtype=np.uint8).reshape(2 * n, _BLOCK)
    state = np.repeat(_IV[:, None], 2 * n, axis=1)
    _compress(state, blocks.view(">u4").astype(np.uint32).T)
    full = state.T
    return full[:n].copy(), full[n:].copy()


def hmac_many(
    key: bytes, messages: Sequence[bytes], out_bytes: int = _DIGEST_BYTES
) -> list[bytes]:
    """``HMAC-SHA256(key, m)`` per message under one shared key.

    Byte-identical to ``hmac.new(key, m, sha256).digest()[:out_bytes]``.
    Requires ``out_bytes <= 32``; wider outputs belong to the counter-mode
    expansion in :class:`repro.crypto.prf.Prf`, which stays scalar.
    """
    states = key_state(key)
    return hmac_many_with_state(states[0], states[1], messages, out_bytes)


def hmac_many_with_state(
    inner_state,
    outer_state,
    messages: Sequence[bytes],
    out_bytes: int = _DIGEST_BYTES,
) -> list[bytes]:
    """HMAC lanes under one precomputed :func:`key_state` pair.

    ``inner_state`` / ``outer_state`` are ``(8,)`` rows; the key block they
    encode is shared by every lane (the :class:`~repro.crypto.prf.Prf`
    shape).  Messages of differing lengths are grouped per pass.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("hmac_many_with_state requires numpy")
    if out_bytes < 1 or out_bytes > _DIGEST_BYTES:
        raise ValueError("out_bytes must be in [1, 32]")
    if not messages:
        return []
    np = _np
    out: list[bytes | None] = [None] * len(messages)
    by_len: dict[int, list[int]] = {}
    for index, message in enumerate(messages):
        by_len.setdefault(len(message), []).append(index)
    inner_base = np.asarray(inner_state, dtype=np.uint32).reshape(8, 1)
    outer_base = np.asarray(outer_state, dtype=np.uint32).reshape(8, 1)
    for length, indices in by_len.items():
        n = len(indices)
        matrix = _matrix([messages[i] for i in indices], length)
        digests = _run_lanes(
            matrix, np.repeat(inner_base, n, axis=1), prefix_bytes=_BLOCK
        )
        finals = _run_lanes(
            digests, np.repeat(outer_base, n, axis=1), prefix_bytes=_BLOCK
        )
        flat = finals.tobytes()
        for row, index in enumerate(indices):
            out[index] = flat[row * _DIGEST_BYTES : row * _DIGEST_BYTES + out_bytes]
    return out  # type: ignore[return-value]


def hmac_many_with_states(
    inner_states,
    outer_states,
    messages: Sequence[bytes],
    out_bytes: int = _DIGEST_BYTES,
) -> list[bytes]:
    """HMAC lanes with a *distinct* key state per message.

    ``inner_states`` / ``outer_states`` are ``(N, 8)`` arrays from
    :func:`key_states_many` (the AEAD table-build shape: one label key per
    table entry).  All messages must share one length — the AEAD batch
    callers guarantee it, and it keeps this hot path single-pass.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("hmac_many_with_states requires numpy")
    if out_bytes < 1 or out_bytes > _DIGEST_BYTES:
        raise ValueError("out_bytes must be in [1, 32]")
    n = len(messages)
    if n == 0:
        return []
    length = len(messages[0])
    for message in messages:
        if len(message) != length:
            raise ValueError("hmac_many_with_states requires equal-length messages")
    np = _np
    inner = np.ascontiguousarray(np.asarray(inner_states, dtype=np.uint32)[:n].T)
    outer = np.ascontiguousarray(np.asarray(outer_states, dtype=np.uint32)[:n].T)
    digests = _run_lanes(_matrix(messages, length), inner, prefix_bytes=_BLOCK)
    finals = _run_lanes(digests, outer, prefix_bytes=_BLOCK)
    flat = finals.tobytes()
    return [
        flat[row * _DIGEST_BYTES : row * _DIGEST_BYTES + out_bytes]
        for row in range(n)
    ]


__all__ = [
    "HAVE_NUMPY",
    "enabled",
    "lanes_disabled",
    "calibrate",
    "use_lanes",
    "sha256_many",
    "key_state",
    "key_states_many",
    "hmac_many",
    "hmac_many_with_state",
    "hmac_many_with_states",
]
