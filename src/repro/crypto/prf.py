"""Pseudo-random functions for key encoding and label generation.

The paper's data model (§2.2) stores ``<PRF(k), Enc(v)>``; LBL-ORTOA (§5)
additionally derives per-bit secret labels ``PRF(k, index, bit, counter)``.
Both uses are served by :class:`Prf`, a thin, domain-separated wrapper over
HMAC-SHA256.  HMAC with a secret key is the textbook PRF instantiation, and
determinism — same inputs, same output, forever — is exactly the property the
protocols lean on.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import ConfigurationError

_DIGEST_BYTES = hashlib.sha256().digest_size


def _encode_component(component: bytes | str | int) -> bytes:
    """Encode one PRF input component with an unambiguous type prefix.

    A length-prefixed, type-tagged encoding guarantees that distinct input
    tuples can never collide after concatenation (e.g. ``("ab", "c")`` vs
    ``("a", "bc")``), which would otherwise silently break label uniqueness.
    """
    if isinstance(component, bytes):
        payload = component
        tag = b"B"
    elif isinstance(component, str):
        payload = component.encode("utf-8")
        tag = b"S"
    elif isinstance(component, int):
        if component < 0:
            raise ConfigurationError("PRF integer inputs must be non-negative")
        payload = component.to_bytes((component.bit_length() + 7) // 8 or 1, "big")
        tag = b"I"
    else:
        raise ConfigurationError(f"unsupported PRF input type: {type(component)!r}")
    return tag + len(payload).to_bytes(4, "big") + payload


class Prf:
    """A keyed, deterministic PRF with arbitrary-length output.

    Outputs longer than one SHA-256 block are produced in counter mode over
    the inner HMAC, so a single ``Prf`` can serve both 128-bit labels and the
    wider outputs needed by the stream cipher in :mod:`repro.crypto.aead`.

    Args:
        key: Secret PRF key; at least 16 bytes.
        out_bytes: Default output length of :meth:`evaluate`.
    """

    def __init__(self, key: bytes, out_bytes: int = 16) -> None:
        if len(key) < 16:
            raise ConfigurationError("PRF key must be at least 16 bytes")
        if out_bytes <= 0:
            raise ConfigurationError("PRF output length must be positive")
        self._key = key
        self.out_bytes = out_bytes

    def evaluate(self, *components: bytes | str | int, out_bytes: int | None = None) -> bytes:
        """Evaluate the PRF on a tuple of components.

        Args:
            *components: Any mix of ``bytes``, ``str``, and non-negative
                ``int`` values; the tuple is injectively encoded before MACing.
            out_bytes: Override the instance's default output length.

        Returns:
            ``out_bytes`` bytes of deterministic pseudo-random output.
        """
        n = self.out_bytes if out_bytes is None else out_bytes
        if n <= 0:
            raise ConfigurationError("PRF output length must be positive")
        message = b"".join(_encode_component(c) for c in components)
        blocks = []
        for counter in range((n + _DIGEST_BYTES - 1) // _DIGEST_BYTES):
            mac = hmac.new(self._key, counter.to_bytes(4, "big") + message, hashlib.sha256)
            blocks.append(mac.digest())
        return b"".join(blocks)[:n]

    def encode_key(self, key: str) -> bytes:
        """Encode a datastore key as it is stored at the server (``PRF(k)``)."""
        return self.evaluate("key-encoding", key)

    def derive_subkey(self, purpose: str) -> bytes:
        """Derive an independent 32-byte key for a named purpose."""
        return self.evaluate("subkey", purpose, out_bytes=32)


__all__ = ["Prf"]
