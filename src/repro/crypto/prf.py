"""Pseudo-random functions for key encoding and label generation.

The paper's data model (§2.2) stores ``<PRF(k), Enc(v)>``; LBL-ORTOA (§5)
additionally derives per-bit secret labels ``PRF(k, index, bit, counter)``.
Both uses are served by :class:`Prf`, a thin, domain-separated wrapper over
HMAC-SHA256.  HMAC with a secret key is the textbook PRF instantiation, and
determinism — same inputs, same output, forever — is exactly the property the
protocols lean on.

Hot-path design: one LBL access derives thousands of labels, so this module
offers three tiers of the *same* function (outputs are byte-identical across
all of them, pinned by golden-vector tests):

* :meth:`Prf.evaluate` — the general entry point.  The keyed HMAC state is
  computed once per :class:`Prf` and ``.copy()``-ed per evaluation, which
  skips the per-call key schedule.
* :meth:`Prf.evaluate_many` — encodes a shared component prefix once and
  evaluates a whole batch of suffix tuples in one pass.
* :class:`PrfContext` — a pre-encoded prefix (e.g. ``("label", key, index)``)
  for repeated tail-only evaluations across calls.

The two batch tiers additionally consult the numpy lane engine
(:mod:`repro.crypto.sha256_lanes`): when a batch crosses the calibrated
threshold (:func:`~repro.crypto.sha256_lanes.use_lanes`), the whole batch is
hashed in parallel uint32 lanes instead of one ``hashlib`` call per message.
Outputs stay byte-identical either way; ``REPRO_NO_VECTOR=1`` pins the
stdlib path.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.crypto import sha256_lanes as _lanes
from repro.errors import ConfigurationError
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger

_DIGEST_BYTES = hashlib.sha256().digest_size
_BLOCK_BYTES = 64


def hmac_compressions(message_len: int, out_bytes: int = _DIGEST_BYTES) -> int:
    """SHA-256 compression-function applications of one :class:`Prf` call.

    ``message_len`` is the full hashed message including the 4-byte counter
    head.  With the keyed inner/outer states precomputed (their key blocks
    are paid once per :class:`Prf`), a single-digest HMAC costs
    ``(message_len + 8) // 64`` extra inner compressions beyond the one that
    absorbs the final padding, plus one inner-final and one outer
    compression; outputs wider than a digest repeat that per 32-byte block.
    This closed form is what the ledger hooks meter and what
    :mod:`repro.analysis.costmodel` predicts — the model-vs-ledger tests
    keep the two in lockstep.
    """
    per_digest = (message_len + 8) // _BLOCK_BYTES + 2
    blocks = (out_bytes + _DIGEST_BYTES - 1) // _DIGEST_BYTES
    return blocks * per_digest

# HMAC ipad/opad as byte-translation tables: ``key.translate(_IPAD_TRANS)``
# XORs every byte with 0x36 at C speed, which makes the explicit
# inner/outer-hash form of HMAC (RFC 2104) cheaper than the ``hmac`` module's
# object machinery while producing identical bytes.
_IPAD_TRANS = bytes(b ^ 0x36 for b in range(256))
_OPAD_TRANS = bytes(b ^ 0x5C for b in range(256))


def hmac_sha256_pair(key: bytes) -> "tuple[hashlib._Hash, hashlib._Hash]":
    """The keyed inner/outer SHA-256 states of ``HMAC-SHA256(key, ·)``.

    ``HMAC(key, msg)`` equals ``outer(inner(msg))`` where ``inner`` starts
    from ``sha256(key ⊕ ipad)`` and ``outer`` from ``sha256(key ⊕ opad)`` —
    the RFC 2104 definition.  Callers ``copy()`` the returned states per
    message, paying the key schedule exactly once.
    """
    if len(key) > _BLOCK_BYTES:
        key = hashlib.sha256(key).digest()
    padded = key.ljust(_BLOCK_BYTES, b"\x00")
    return (
        hashlib.sha256(padded.translate(_IPAD_TRANS)),
        hashlib.sha256(padded.translate(_OPAD_TRANS)),
    )

#: Memo of encoded small non-negative integers.  Group values, group indices,
#: and access counters dominate PRF inputs and repeat endlessly; encoding is
#: pure, so a process-wide cache is safe.  Bounded by only admitting small
#: ints (the set of distinct small ints is finite).
_INT_ENCODING_CACHE: dict[int, bytes] = {}
_INT_CACHE_LIMIT = 1 << 16


def _encode_component(component: bytes | str | int) -> bytes:
    """Encode one PRF input component with an unambiguous type prefix.

    A length-prefixed, type-tagged encoding guarantees that distinct input
    tuples can never collide after concatenation (e.g. ``("ab", "c")`` vs
    ``("a", "bc")``), which would otherwise silently break label uniqueness.
    """
    if isinstance(component, bytes):
        payload = component
        tag = b"B"
    elif isinstance(component, str):
        payload = component.encode("utf-8")
        tag = b"S"
    elif isinstance(component, int):
        cached = _INT_ENCODING_CACHE.get(component)
        if cached is not None:
            return cached
        if component < 0:
            raise ConfigurationError("PRF integer inputs must be non-negative")
        payload = component.to_bytes((component.bit_length() + 7) // 8 or 1, "big")
        encoded = b"I" + len(payload).to_bytes(4, "big") + payload
        if component < _INT_CACHE_LIMIT:
            _INT_ENCODING_CACHE[component] = encoded
        return encoded
    else:
        raise ConfigurationError(f"unsupported PRF input type: {type(component)!r}")
    return tag + len(payload).to_bytes(4, "big") + payload


def encode_components(*components: bytes | str | int) -> bytes:
    """The injective byte encoding :class:`Prf` applies to an input tuple.

    Exposed so batch callers (e.g. :class:`~repro.crypto.labels.LabelCodec`)
    can pre-encode the components that repeat across a batch and hand the
    concatenations to :meth:`PrfContext.evaluate_tails`.
    """
    return b"".join([_encode_component(c) for c in components])


_ZERO_COUNTER = (0).to_bytes(4, "big")


class Prf:
    """A keyed, deterministic PRF with arbitrary-length output.

    Outputs longer than one SHA-256 block are produced in counter mode over
    the inner HMAC, so a single ``Prf`` can serve both 128-bit labels and the
    wider outputs needed by the stream cipher in :mod:`repro.crypto.aead`.

    Args:
        key: Secret PRF key; at least 16 bytes.
        out_bytes: Default output length of :meth:`evaluate`.
    """

    __slots__ = ("_key", "out_bytes", "_inner0", "_outer0", "_lane_state")

    def __init__(self, key: bytes, out_bytes: int = 16) -> None:
        if len(key) < 16:
            raise ConfigurationError("PRF key must be at least 16 bytes")
        if out_bytes <= 0:
            raise ConfigurationError("PRF output length must be positive")
        self._key = key
        self.out_bytes = out_bytes
        # The HMAC key schedule (two compression-function applications plus
        # object setup) is identical for every evaluation; pay it once here
        # and ``.copy()`` the keyed states per call.
        self._inner0, self._outer0 = hmac_sha256_pair(key)
        # Lane-engine twin of the keyed states, materialized on first use.
        self._lane_state = None

    def _lane_pair(self):
        """``(inner_row, outer_row)`` uint32 key states for the lane engine."""
        state = self._lane_state
        if state is None:
            state = self._lane_state = _lanes.key_state(self._key)
        return state[0], state[1]

    def _raw(self, message: bytes, n: int) -> bytes:
        """``n`` output bytes for an already-encoded ``message``."""
        if n <= _DIGEST_BYTES:
            inner = self._inner0.copy()
            inner.update(_ZERO_COUNTER + message)
            outer = self._outer0.copy()
            outer.update(inner.digest())
            return outer.digest()[:n]
        blocks = []
        for counter in range((n + _DIGEST_BYTES - 1) // _DIGEST_BYTES):
            inner = self._inner0.copy()
            inner.update(counter.to_bytes(4, "big") + message)
            outer = self._outer0.copy()
            outer.update(inner.digest())
            blocks.append(outer.digest())
        return b"".join(blocks)[:n]

    def evaluate(self, *components: bytes | str | int, out_bytes: int | None = None) -> bytes:
        """Evaluate the PRF on a tuple of components.

        Args:
            *components: Any mix of ``bytes``, ``str``, and non-negative
                ``int`` values; the tuple is injectively encoded before MACing.
            out_bytes: Override the instance's default output length.

        Returns:
            ``out_bytes`` bytes of deterministic pseudo-random output.
        """
        n = self.out_bytes if out_bytes is None else out_bytes
        if n <= 0:
            raise ConfigurationError("PRF output length must be positive")
        message = b"".join(_encode_component(c) for c in components)
        if _obs.enabled:
            _ledger.add_prf(1, hmac_compressions(4 + len(message), n))
        return self._raw(message, n)

    def evaluate_many(
        self,
        prefix_components: Sequence[bytes | str | int],
        suffixes: Iterable[Sequence[bytes | str | int]],
        *,
        out_bytes: int | None = None,
    ) -> list[bytes]:
        """Evaluate the PRF on ``(*prefix_components, *suffix)`` per suffix.

        The shared prefix is encoded exactly once; each output is
        byte-identical to ``evaluate(*prefix_components, *suffix)``.

        Args:
            prefix_components: Components shared by every evaluation.
            suffixes: One component tuple per desired output.
            out_bytes: Override the instance's default output length.

        Returns:
            One PRF output per suffix, in iteration order.
        """
        n = self.out_bytes if out_bytes is None else out_bytes
        if n <= 0:
            raise ConfigurationError("PRF output length must be positive")
        prefix = b"".join(_encode_component(c) for c in prefix_components)
        encode = _encode_component
        digest_len = _DIGEST_BYTES
        out: list[bytes] = []
        append = out.append
        if n <= digest_len:
            head = _ZERO_COUNTER + prefix
            messages = [
                head + b"".join([encode(c) for c in suffix]) for suffix in suffixes
            ]
            if _obs.enabled and messages:
                _ledger.add_prf(
                    len(messages), sum(hmac_compressions(len(m)) for m in messages)
                )
            if _lanes.use_lanes(len(messages)):
                inner_row, outer_row = self._lane_pair()
                return _lanes.hmac_many_with_state(inner_row, outer_row, messages, n)
            # Single-block fast path: two state copies + updates per output.
            inner0 = self._inner0
            outer0 = self._outer0
            for message in messages:
                inner = inner0.copy()
                inner.update(message)
                outer = outer0.copy()
                outer.update(inner.digest())
                append(outer.digest()[:n])
        else:
            for suffix in suffixes:
                message = prefix + b"".join([encode(c) for c in suffix])
                if _obs.enabled:
                    _ledger.add_prf(1, hmac_compressions(4 + len(message), n))
                append(self._raw(message, n))
        return out

    def context(
        self, *prefix_components: bytes | str | int, out_bytes: int | None = None
    ) -> "PrfContext":
        """A :class:`PrfContext` with ``prefix_components`` pre-encoded."""
        return PrfContext(self, prefix_components, out_bytes=out_bytes)

    def encode_key(self, key: str) -> bytes:
        """Encode a datastore key as it is stored at the server (``PRF(k)``)."""
        return self.evaluate("key-encoding", key)

    def derive_subkey(self, purpose: str) -> bytes:
        """Derive an independent 32-byte key for a named purpose."""
        return self.evaluate("subkey", purpose, out_bytes=32)

    def export_key(self) -> bytes:
        """The raw PRF key.

        ``Prf`` objects hold live ``hashlib`` states and cannot be pickled;
        worker processes (:class:`~repro.core.lbl.procpool.ProcessCryptoPool`)
        reconstruct an identical PRF from these bytes instead.  Handle with
        the same care as the keychain itself.
        """
        return self._key


class PrfContext:
    """A PRF with a frozen, pre-encoded component prefix.

    Captures the common shape of LBL label derivation — a fixed
    ``("label", key, …)`` head followed by a varying tail — so repeated
    evaluations skip re-encoding the prefix.  Outputs are byte-identical to
    ``prf.evaluate(*prefix, *tail)``.

    Args:
        prf: The keyed PRF to evaluate under.
        prefix_components: Components shared by every later evaluation.
        out_bytes: Output length for all evaluations (defaults to the PRF's).
    """

    __slots__ = ("_prf", "_prefix", "_head", "out_bytes")

    def __init__(
        self,
        prf: Prf,
        prefix_components: Sequence[bytes | str | int],
        *,
        out_bytes: int | None = None,
    ) -> None:
        n = prf.out_bytes if out_bytes is None else out_bytes
        if n <= 0:
            raise ConfigurationError("PRF output length must be positive")
        self._prf = prf
        self._prefix = b"".join(_encode_component(c) for c in prefix_components)
        self._head = _ZERO_COUNTER + self._prefix
        self.out_bytes = n

    def evaluate(self, *tail: bytes | str | int) -> bytes:
        """PRF output for ``(*prefix, *tail)``."""
        return self.evaluate_tail(b"".join([_encode_component(c) for c in tail]))

    def evaluate_tail(self, tail: bytes) -> bytes:
        """PRF output for an already-encoded (:func:`encode_components`) tail."""
        n = self.out_bytes
        if _obs.enabled:
            _ledger.add_prf(1, hmac_compressions(len(self._head) + len(tail), n))
        if n <= _DIGEST_BYTES:
            prf = self._prf
            inner = prf._inner0.copy()
            inner.update(self._head + tail)
            outer = prf._outer0.copy()
            outer.update(inner.digest())
            return outer.digest()[:n]
        return self._prf._raw(self._prefix + tail, n)

    def evaluate_many(
        self, suffixes: Iterable[Sequence[bytes | str | int]]
    ) -> list[bytes]:
        """One PRF output per suffix tuple, sharing this context's prefix."""
        encode = _encode_component
        return self.evaluate_tails(
            [b"".join([encode(c) for c in suffix]) for suffix in suffixes]
        )

    def evaluate_tails(self, tails: Iterable[bytes]) -> list[bytes]:
        """One PRF output per already-encoded tail (the hot label kernel).

        Callers encode repeating components once (:func:`encode_components`)
        and pass byte concatenations; each output is byte-identical to
        ``evaluate(*suffix)`` for the suffix the tail encodes.
        """
        n = self.out_bytes
        out: list[bytes] = []
        append = out.append
        if n <= _DIGEST_BYTES:
            prf = self._prf
            head = self._head
            if not isinstance(tails, (list, tuple)):
                tails = list(tails)
            if _obs.enabled and tails:
                head_len = len(head)
                _ledger.add_prf(
                    len(tails),
                    sum(hmac_compressions(head_len + len(t)) for t in tails),
                )
            if _lanes.use_lanes(len(tails)):
                inner_row, outer_row = prf._lane_pair()
                return _lanes.hmac_many_with_state(
                    inner_row, outer_row, [head + tail for tail in tails], n
                )
            inner0 = prf._inner0
            outer0 = prf._outer0
            for tail in tails:
                inner = inner0.copy()
                inner.update(head + tail)
                outer = outer0.copy()
                outer.update(inner.digest())
                append(outer.digest()[:n])
        else:
            raw = self._prf._raw
            prefix = self._prefix
            head_len = 4 + len(prefix)
            for tail in tails:
                if _obs.enabled:
                    _ledger.add_prf(1, hmac_compressions(head_len + len(tail), n))
                append(raw(prefix + tail, n))
        return out


__all__ = [
    "Prf",
    "PrfContext",
    "encode_components",
    "hmac_compressions",
    "hmac_sha256_pair",
]
