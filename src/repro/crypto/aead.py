"""Authenticated encryption with detectable decryption failure.

LBL-ORTOA's server receives, per label group, a small table of ciphertexts
and must discover which one its stored label can open (paper §5.2 step 2.1:
"LBL-ORTOA uses authenticated encryption to ensure the server identifies
successful decryptions").  This module provides exactly that primitive:

* encrypt-then-MAC with independent keys derived from the caller's key,
* a keystream built from HMAC-SHA256 in counter mode (a PRF in CTR mode is a
  standard stream cipher construction),
* :func:`decrypt` raising :class:`~repro.errors.DecryptionError` on a wrong
  key or tampered ciphertext.

The ciphertext layout is ``nonce(NONCE_LEN) || body(len(pt)) || tag(TAG_LEN)``.
For ORTOA's label encryption the key (a fresh PRF label) is used at most once
per direction, but a random nonce is included anyway so the primitive is safe
under key reuse by other callers (e.g. the TEE variant's value encryption).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.errors import ConfigurationError, DecryptionError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY

NONCE_LEN = 12
TAG_LEN = 16
_DIGEST = hashlib.sha256
_DIGEST_BYTES = 32


def ciphertext_len(plaintext_len: int) -> int:
    """Length in bytes of a ciphertext for a plaintext of ``plaintext_len``."""
    return NONCE_LEN + plaintext_len + TAG_LEN


def _subkeys(key: bytes) -> tuple[bytes, bytes]:
    """Derive independent encryption and MAC keys from ``key``."""
    enc_key = hmac.new(key, b"aead-enc", _DIGEST).digest()
    mac_key = hmac.new(key, b"aead-mac", _DIGEST).digest()
    return enc_key, mac_key


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _DIGEST_BYTES - 1) // _DIGEST_BYTES):
        block = hmac.new(enc_key, nonce + counter.to_bytes(4, "big"), _DIGEST).digest()
        blocks.append(block)
    return b"".join(blocks)[:length]


def encrypt(key: bytes, plaintext: bytes, *, nonce: bytes | None = None) -> bytes:
    """Encrypt ``plaintext`` under ``key`` with integrity protection.

    Args:
        key: Symmetric key, at least 16 bytes.
        plaintext: Message to protect (may be empty).
        nonce: Optional explicit nonce (exactly ``NONCE_LEN`` bytes); omit to
            draw a fresh random one.  Deterministic tests use this hook.

    Returns:
        ``nonce || ciphertext-body || tag``.
    """
    if len(key) < 16:
        raise ConfigurationError("AEAD key must be at least 16 bytes")
    if nonce is None:
        nonce = secrets.token_bytes(NONCE_LEN)
    elif len(nonce) != NONCE_LEN:
        raise ConfigurationError(f"nonce must be exactly {NONCE_LEN} bytes")
    enc_key, mac_key = _subkeys(key)
    body = bytes(p ^ k for p, k in zip(plaintext, _keystream(enc_key, nonce, len(plaintext))))
    tag = hmac.new(mac_key, nonce + body, _DIGEST).digest()[:TAG_LEN]
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.encrypts").inc()
    return nonce + body + tag


def decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt and authenticate ``ciphertext`` under ``key``.

    Raises:
        DecryptionError: if the ciphertext is malformed, was produced under a
            different key, or was modified in transit.  This is the signal
            LBL-ORTOA's server uses to discard the wrong table entry.
    """
    if len(key) < 16:
        raise ConfigurationError("AEAD key must be at least 16 bytes")
    if len(ciphertext) < NONCE_LEN + TAG_LEN:
        if _obs.enabled:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc()
        raise DecryptionError("ciphertext too short")
    nonce = ciphertext[:NONCE_LEN]
    body = ciphertext[NONCE_LEN:-TAG_LEN]
    tag = ciphertext[-TAG_LEN:]
    enc_key, mac_key = _subkeys(key)
    expected = hmac.new(mac_key, nonce + body, _DIGEST).digest()[:TAG_LEN]
    if not hmac.compare_digest(tag, expected):
        if _obs.enabled:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc()
        raise DecryptionError("authentication tag mismatch")
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.decrypts").inc()
    return bytes(c ^ k for c, k in zip(body, _keystream(enc_key, nonce, len(body))))


def try_decrypt(key: bytes, ciphertext: bytes) -> bytes | None:
    """Like :func:`decrypt` but returns ``None`` instead of raising.

    Convenience for the LBL server's try-both-entries loop.
    """
    try:
        return decrypt(key, ciphertext)
    except DecryptionError:
        return None


__all__ = ["encrypt", "decrypt", "try_decrypt", "ciphertext_len", "NONCE_LEN", "TAG_LEN"]
