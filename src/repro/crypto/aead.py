"""Authenticated encryption with detectable decryption failure.

LBL-ORTOA's server receives, per label group, a small table of ciphertexts
and must discover which one its stored label can open (paper §5.2 step 2.1:
"LBL-ORTOA uses authenticated encryption to ensure the server identifies
successful decryptions").  This module provides exactly that primitive:

* encrypt-then-MAC under a single key with domain-separated HMAC-SHA256
  invocations — keystream blocks are ``HMAC(key, "aead-enc" || nonce || ctr)``
  and the tag is ``HMAC(key, "aead-mac" || nonce || body)``.  The two domains
  are distinct fixed-length prefixes, so the PRF inputs can never collide and
  the keystream/tag outputs are computationally independent (standard PRF
  domain separation); one HMAC key schedule serves both directions, which is
  what makes the per-table-entry cost two HMAC invocations instead of four.
* a keystream built from HMAC-SHA256 in counter mode (a PRF in CTR mode is a
  standard stream cipher construction),
* :func:`decrypt` raising :class:`~repro.errors.DecryptionError` on a wrong
  key or tampered ciphertext.

The ciphertext layout is ``nonce(NONCE_LEN) || body(len(pt)) || tag(TAG_LEN)``.
For ORTOA's label encryption the key (a fresh PRF label) is used at most once
per direction, but a random nonce is included anyway so the primitive is safe
under key reuse by other callers (e.g. the TEE variant's value encryption).

Batch entry points serve the two hot loops of the LBL protocol:
:func:`encrypt_many` builds a proxy's whole ciphertext table with nonce
generation and per-entry setup hoisted out of the loop, and :func:`open_any`
runs the server's try-every-entry scan computing the stored label's key
schedule exactly once.  Both are byte-compatible with the scalar functions
(the golden-vector tests pin the exact ciphertext bytes for fixed nonces).

The vector pipeline adds three levers on top, all byte-identical:

* **keyed-object schedules** (:func:`keyed_states`): the two pad blocks
  pre-absorbed into ``hashlib`` states, so each HMAC costs two ``copy()`` +
  ``update`` instead of re-hashing 64-byte pad blocks;
* **keystream prefetch** (:func:`prefetch_keystreams`): keystream blocks
  depend only on ``(key, nonce)`` — never on the payload, and therefore
  never on whether the next access is a GET or a PUT — so the proxy can
  compute them during ``finalize`` and hand them back via
  ``encrypt_many(..., keystreams=…)``, leaving only the tag MAC on the
  critical prepare path;
* **lane routing**: batches past the calibrated threshold
  (:func:`repro.crypto.sha256_lanes.use_lanes`) are hashed in numpy uint32
  lanes (:func:`open_many`/:func:`open_any`/:func:`encrypt_many`);
  ``REPRO_NO_VECTOR=1`` pins the stdlib loops.

HMAC is evaluated in its explicit RFC 2104 form — ``sha256(k_opad ||
sha256(k_ipad || msg))`` with the padded keys produced by a C-speed
``bytes.translate`` — because driving raw ``hashlib`` one-shots is
measurably faster than the ``hmac`` module's object machinery while
producing identical bytes.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.crypto import sha256_lanes as _lanes
from repro.errors import ConfigurationError, DecryptionError

try:  # numpy accelerates batch assembly; every path has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None  # type: ignore[assignment]
from repro.obs import _state as _obs
from repro.obs import ledger as _ledger
from repro.obs.metrics import REGISTRY

NONCE_LEN = 12
TAG_LEN = 16
_DIGEST = hashlib.sha256
_DIGEST_BYTES = 32
_BLOCK = 64

# HMAC ipad/opad as byte-translation tables (see module docstring).
_IPAD_TRANS = bytes(b ^ 0x36 for b in range(256))
_OPAD_TRANS = bytes(b ^ 0x5C for b in range(256))

# Fixed-length, distinct domain prefixes keeping keystream and tag inputs
# disjoint under the shared key.
_ENC_DOMAIN = b"aead-enc"
_MAC_DOMAIN = b"aead-mac"
_ZERO_CTR = b"\x00\x00\x00\x00"


def ciphertext_len(plaintext_len: int) -> int:
    """Length in bytes of a ciphertext for a plaintext of ``plaintext_len``."""
    return NONCE_LEN + plaintext_len + TAG_LEN


def key_schedule(key: bytes) -> tuple[bytes, bytes]:
    """The ``(ipad_block, opad_block)`` HMAC-SHA256 key schedule of ``key``.

    ``HMAC(key, msg) == sha256(opad_block || sha256(ipad_block || msg))`` —
    the RFC 2104 definition.  Exposed so callers that know a key will be used
    soon (e.g. the LBL proxy's label cache) can precompute the schedule off
    the critical path and hand it back via ``encrypt_many(..., schedules=…)``.

    Raises:
        ConfigurationError: if the key is shorter than 16 bytes.
    """
    if len(key) < 16:
        raise ConfigurationError("AEAD key must be at least 16 bytes")
    if len(key) > _BLOCK:
        key = _DIGEST(key).digest()
    padded = key.ljust(_BLOCK, b"\x00")
    return padded.translate(_IPAD_TRANS), padded.translate(_OPAD_TRANS)


def keyed_states(key: bytes) -> "tuple[hashlib._Hash, hashlib._Hash]":
    """The :func:`key_schedule` pad blocks pre-absorbed into SHA-256 states.

    ``HMAC(key, msg) == outer.copy().update(inner.copy().update(msg))`` in
    the RFC 2104 sense: the returned ``(inner, outer)`` ``hashlib`` objects
    already contain one compression of ``key ⊕ ipad`` / ``key ⊕ opad``.
    Compared to the pad-block form, each later HMAC saves one 64-byte block
    hash per direction — the label cache stores these for every key it
    expects :func:`encrypt_many` to use next epoch.
    """
    ipad, opad = key_schedule(key)
    return _DIGEST(ipad), _DIGEST(opad)


def prefetch_table(
    keys: "list[bytes] | tuple[bytes, ...]",
    *,
    nonces: "list[bytes] | None" = None,
) -> "tuple[list[tuple[hashlib._Hash, hashlib._Hash]], list[bytes], list[bytes]]":
    """Keyed states + nonces + keystream blocks for a batch, in one pass.

    Equivalent to :func:`keyed_states` per key followed by
    :func:`prefetch_keystreams`, fused so the proxy's finalize-side prefetch
    pays one loop instead of two.  Returns ``(keyed, nonces, keystreams)``.
    """
    n = len(keys)
    if nonces is None:
        pool = secrets.token_bytes(NONCE_LEN * n)
        nonces = [pool[i * NONCE_LEN : (i + 1) * NONCE_LEN] for i in range(n)]
    elif len(nonces) != n:
        raise ConfigurationError(f"{n} keys for {len(nonces)} nonces")
    sha = _DIGEST
    ipad_trans = _IPAD_TRANS
    opad_trans = _OPAD_TRANS
    enc_domain = _ENC_DOMAIN
    zero_ctr = _ZERO_CTR
    block = _BLOCK
    keyed: "list[tuple[hashlib._Hash, hashlib._Hash]]" = []
    streams: list[bytes] = []
    keyed_append = keyed.append
    stream_append = streams.append
    for key, nonce in zip(keys, nonces):
        if len(key) < 16:
            raise ConfigurationError("AEAD key must be at least 16 bytes")
        padded = (key if len(key) <= block else sha(key).digest()).ljust(
            block, b"\x00"
        )
        inner0 = sha(padded.translate(ipad_trans))
        outer0 = sha(padded.translate(opad_trans))
        keyed_append((inner0, outer0))
        inner = inner0.copy()
        inner.update(enc_domain + nonce + zero_ctr)
        outer = outer0.copy()
        outer.update(inner.digest())
        stream_append(outer.digest())
    return keyed, nonces, streams


def prefetch_keystreams(
    keyed: "list[tuple[hashlib._Hash, hashlib._Hash]]",
    *,
    nonces: "list[bytes] | None" = None,
) -> tuple[list[bytes], list[bytes]]:
    """Draw nonces and compute one keystream block per keyed state pair.

    The keystream block ``HMAC(key, "aead-enc" || nonce || 0)`` is payload-
    independent, so it can be computed long before the plaintext exists —
    in particular before the proxy knows whether the next access is a read
    or a write, which keeps the prefetch operation-type-oblivious.  Feed the
    result straight into ``encrypt_many(..., nonces=…, keystreams=…)``.

    Args:
        keyed: One :func:`keyed_states` pair per future ciphertext.
        nonces: Optional explicit nonces (deterministic tests).

    Returns:
        ``(nonces, keystreams)`` — each keystream is the full 32-byte block,
        covering any single-block plaintext (≤ 32 bytes).
    """
    n = len(keyed)
    if nonces is None:
        pool = secrets.token_bytes(NONCE_LEN * n)
        nonces = [pool[i * NONCE_LEN : (i + 1) * NONCE_LEN] for i in range(n)]
    elif len(nonces) != n:
        raise ConfigurationError(f"{n} keyed states for {len(nonces)} nonces")
    enc_domain = _ENC_DOMAIN
    zero_ctr = _ZERO_CTR
    streams: list[bytes] = []
    append = streams.append
    for (inner0, outer0), nonce in zip(keyed, nonces):
        inner = inner0.copy()
        inner.update(enc_domain + nonce + zero_ctr)
        outer = outer0.copy()
        outer.update(inner.digest())
        append(outer.digest())
    return nonces, streams


def _keystream(ipad: bytes, opad: bytes, nonce: bytes, length: int) -> bytes:
    sha = _DIGEST
    head = ipad + _ENC_DOMAIN + nonce
    if length <= _DIGEST_BYTES:
        # One-block fast path — every LBL label payload lands here.
        return sha(opad + sha(head + _ZERO_CTR).digest()).digest()[:length]
    blocks = []
    for counter in range((length + _DIGEST_BYTES - 1) // _DIGEST_BYTES):
        blocks.append(
            sha(opad + sha(head + counter.to_bytes(4, "big")).digest()).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, keystream: bytes) -> bytes:
    """XOR ``data`` with a keystream of at least the same length."""
    n = len(data)
    if n == 0:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream[:n], "big")
    ).to_bytes(n, "big")


def encrypt(key: bytes, plaintext: bytes, *, nonce: bytes | None = None) -> bytes:
    """Encrypt ``plaintext`` under ``key`` with integrity protection.

    Args:
        key: Symmetric key, at least 16 bytes.
        plaintext: Message to protect (may be empty).
        nonce: Optional explicit nonce (exactly ``NONCE_LEN`` bytes); omit to
            draw a fresh random one.  Deterministic tests use this hook.

    Returns:
        ``nonce || ciphertext-body || tag``.
    """
    ipad, opad = key_schedule(key)
    if nonce is None:
        nonce = secrets.token_bytes(NONCE_LEN)
    elif len(nonce) != NONCE_LEN:
        raise ConfigurationError(f"nonce must be exactly {NONCE_LEN} bytes")
    body = _xor(plaintext, _keystream(ipad, opad, nonce, len(plaintext)))
    sha = _DIGEST
    tag = sha(opad + sha(ipad + _MAC_DOMAIN + nonce + body).digest()).digest()[:TAG_LEN]
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.encrypts").inc()
        _ledger.add_op("aead.encrypts")
    return nonce + body + tag


def encrypt_many(
    keys: "list[bytes] | tuple[bytes, ...] | None",
    payloads,
    *,
    nonces: "list[bytes] | None" = None,
    schedules: "list[tuple[bytes, bytes]] | None" = None,
    keyed: "list[tuple[hashlib._Hash, hashlib._Hash]] | None" = None,
    keystreams: "list[bytes] | None" = None,
    as_matrix: bool = False,
):
    """Encrypt ``payloads[i]`` under ``keys[i]`` for every ``i``, batched.

    Nonce generation (one ``secrets`` draw for the whole batch) and
    per-entry setup are hoisted out of the loop; each output is
    byte-compatible with :func:`encrypt` and opens with :func:`decrypt`.

    Args:
        keys: One symmetric key (≥ 16 bytes) per payload; ``None`` is
            allowed when ``keyed`` supplies the key material instead.
        payloads: Plaintexts to protect — a list of ``bytes``, or (with
            ``keyed`` and numpy present) a uint8 matrix of one row per
            uniform-length payload, letting a caller that assembled its
            payloads as an array skip materializing ``bytes`` objects.
        nonces: Optional explicit nonces (deterministic tests, or the ones
            drawn by :func:`prefetch_keystreams`); defaults to fresh random
            nonces.
        schedules: Optional precomputed :func:`key_schedule` output per key
            (e.g. from the proxy's label cache); each pair MUST match its
            key or the ciphertext will not open under that key.
        keyed: Optional :func:`keyed_states` pair per key — the faster form
            of ``schedules`` (mutually exclusive with it) used by the
            vector pipeline.
        keystreams: Optional prefetched keystream blocks (≥ payload length,
            from :func:`prefetch_keystreams`); requires ``keyed`` and the
            matching ``nonces``.  Skips the per-entry keystream HMAC — the
            vector pipeline's biggest prepare-path saving.
        as_matrix: Return the ciphertexts as one uint8 matrix (one row per
            ``nonce || body || tag``) instead of a list of ``bytes``.
            Requires the ``keyed`` numpy path; the LBL proxy uses it to
            permute tables with one gather instead of per-entry slicing.

    Returns:
        One ``nonce || body || tag`` ciphertext per input, in order (a
        uint8 matrix of the same rows under ``as_matrix=True``).
    """
    if keys is None:
        if keyed is None:
            raise ConfigurationError("keys=None requires keyed=")
        n = len(keyed)
    else:
        n = len(keys)
    if len(payloads) != n:
        raise ConfigurationError(f"{n} keys for {len(payloads)} payloads")
    if keyed is not None and schedules is not None:
        raise ConfigurationError("pass at most one of schedules= and keyed=")
    if as_matrix and (keyed is None or _np is None):
        raise ConfigurationError("as_matrix=True requires keyed= and numpy")
    if _np is not None and isinstance(payloads, _np.ndarray) and keyed is None:
        raise ConfigurationError("matrix payloads require keyed=")
    if keystreams is not None:
        if keyed is None:
            raise ConfigurationError("keystreams= requires keyed=")
        if nonces is None:
            raise ConfigurationError("keystreams= requires the nonces they bind")
        if len(keystreams) != n:
            raise ConfigurationError(f"{n} keys for {len(keystreams)} keystreams")
    if nonces is None:
        # One entropy draw for the whole batch; the slices are NONCE_LEN by
        # construction, so the per-entry length check is skipped below.
        pool = secrets.token_bytes(NONCE_LEN * n)
        nonces = [pool[i * NONCE_LEN : (i + 1) * NONCE_LEN] for i in range(n)]
    else:
        if len(nonces) != n:
            raise ConfigurationError(f"{n} keys for {len(nonces)} nonces")
        for nonce in nonces:
            if len(nonce) != NONCE_LEN:
                raise ConfigurationError(f"nonce must be exactly {NONCE_LEN} bytes")
    if schedules is not None and len(schedules) != n:
        raise ConfigurationError(f"{n} keys for {len(schedules)} key schedules")
    if keyed is not None:
        if len(keyed) != n:
            raise ConfigurationError(f"{n} keys for {len(keyed)} keyed states")
        return _encrypt_many_keyed(payloads, nonces, keyed, keystreams, as_matrix)
    if _lanes.use_lanes(n):
        plen = len(payloads[0])
        if 0 < plen <= _DIGEST_BYTES and all(len(p) == plen for p in payloads):
            return _encrypt_many_lanes(keys, payloads, nonces, plen)
    sha = _DIGEST
    ipad_trans = _IPAD_TRANS
    opad_trans = _OPAD_TRANS
    enc_domain = _ENC_DOMAIN
    mac_domain = _MAC_DOMAIN
    zero_ctr = _ZERO_CTR
    from_bytes = int.from_bytes
    digest_bytes = _DIGEST_BYTES
    block = _BLOCK
    out: list[bytes] = []
    append = out.append
    # The loops below are key_schedule + _keystream + tag inlined into
    # straight-line hashlib one-shots — byte-identical to the scalar path
    # (golden-pinned), but without per-entry function overhead.  One LBL
    # table build runs this num_groups * 2^y times, which makes it the
    # hottest loop in the whole proxy.
    if schedules is None:
        pairs = []
        pairs_append = pairs.append
        for key in keys:
            if len(key) < 16:
                raise ConfigurationError("AEAD key must be at least 16 bytes")
            padded = (key if len(key) <= block else sha(key).digest()).ljust(
                block, b"\x00"
            )
            pairs_append((padded.translate(ipad_trans), padded.translate(opad_trans)))
        schedules = pairs
    for (ipad, opad), plaintext, nonce in zip(schedules, payloads, nonces):
        plen = len(plaintext)
        if 0 < plen <= digest_bytes:
            keystream = sha(
                opad + sha(ipad + enc_domain + nonce + zero_ctr).digest()
            ).digest()
            body = (
                from_bytes(plaintext, "big") ^ from_bytes(keystream[:plen], "big")
            ).to_bytes(plen, "big")
        elif plen == 0:
            body = b""
        else:
            body = _xor(plaintext, _keystream(ipad, opad, nonce, plen))
        nonce_body = nonce + body
        append(
            nonce_body
            + sha(opad + sha(ipad + mac_domain + nonce_body).digest()).digest()[:TAG_LEN]
        )
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.encrypts").inc(n)
        _ledger.add_op("aead.encrypts", n)
    return out


def _encrypt_many_keyed(
    payloads,
    nonces: list[bytes],
    keyed: "list[tuple[hashlib._Hash, hashlib._Hash]]",
    keystreams: "list[bytes] | None",
    as_matrix: bool = False,
):
    """The keyed-object fast path of :func:`encrypt_many`.

    Keystreams come either prefetched or from two state copies per entry;
    only the tag MAC is unavoidable here.  With numpy present and a uniform
    single-block payload length (the LBL table-build shape), XOR, message
    framing, and ciphertext assembly run as whole-batch array ops —
    ``payloads`` may then itself be a uint8 matrix, and ``as_matrix=True``
    hands the assembled ciphertext matrix back without slicing it apart.
    """
    n = len(payloads)
    enc_domain = _ENC_DOMAIN
    zero_ctr = _ZERO_CTR
    is_matrix = _np is not None and isinstance(payloads, _np.ndarray)
    if is_matrix:
        plen = payloads.shape[1]
        uniform = 0 < plen <= _DIGEST_BYTES
    else:
        plen = len(payloads[0]) if n else 0
        uniform = n > 0 and 0 < plen <= _DIGEST_BYTES
        if uniform:
            for payload in payloads:
                if len(payload) != plen:
                    uniform = False
                    break
    if as_matrix and not uniform:
        raise ConfigurationError(
            "as_matrix=True needs uniform single-block payloads"
        )
    out: list[bytes] = []
    append = out.append
    mac_domain = _MAC_DOMAIN
    if uniform and _np is not None:
        if keystreams is None:
            streams: list[bytes] = []
            stream_append = streams.append
            for (inner0, outer0), nonce in zip(keyed, nonces):
                inner = inner0.copy()
                inner.update(enc_domain + nonce + zero_ctr)
                outer = outer0.copy()
                outer.update(inner.digest())
                stream_append(outer.digest())
        else:
            if n and min(map(len, keystreams)) < plen:
                raise ConfigurationError(
                    "prefetched keystream shorter than plaintext"
                )
            streams = keystreams
        dlen = len(mac_domain)
        width = dlen + NONCE_LEN + plen
        plain = (
            payloads
            if is_matrix
            else _np.frombuffer(b"".join(payloads), dtype=_np.uint8).reshape(n, plen)
        )
        stream_mat = _np.frombuffer(b"".join(streams), dtype=_np.uint8).reshape(
            n, -1
        )[:, :plen]
        messages = _np.empty((n, width), dtype=_np.uint8)
        messages[:, :dlen] = _np.frombuffer(mac_domain, dtype=_np.uint8)
        messages[:, dlen : dlen + NONCE_LEN] = _np.frombuffer(
            b"".join(nonces), dtype=_np.uint8
        ).reshape(n, NONCE_LEN)
        bodies = messages[:, dlen + NONCE_LEN :]
        _np.bitwise_xor(plain, stream_mat, out=bodies)
        view = memoryview(messages.tobytes())
        # Full 32-byte digests are appended and truncated to TAG_LEN as one
        # array slice below — cheaper than 2560 per-entry bytes slices.
        tags: list[bytes] = []
        tag_append = tags.append
        start = 0
        for inner0, outer0 in keyed:
            inner = inner0.copy()
            inner.update(view[start : start + width])
            start += width
            outer = outer0.copy()
            outer.update(inner.digest())
            tag_append(outer.digest())
        total = NONCE_LEN + plen + TAG_LEN
        cipher = _np.empty((n, total), dtype=_np.uint8)
        cipher[:, : NONCE_LEN + plen] = messages[:, dlen:]
        cipher[:, NONCE_LEN + plen :] = _np.frombuffer(
            b"".join(tags), dtype=_np.uint8
        ).reshape(n, _DIGEST_BYTES)[:, :TAG_LEN]
        if as_matrix:
            if _obs.enabled:
                REGISTRY.counter("crypto.aead.encrypts").inc(n)
                _ledger.add_op("aead.encrypts", n)
            return cipher
        flat = cipher.tobytes()
        for index in range(n):
            append(flat[index * total : (index + 1) * total])
    else:
        xor = _xor
        digest_bytes = _DIGEST_BYTES
        for index, ((inner0, outer0), plaintext, nonce) in enumerate(
            zip(keyed, payloads, nonces)
        ):
            plen_i = len(plaintext)
            if plen_i == 0:
                body = b""
            elif keystreams is not None:
                stream = keystreams[index]
                if plen_i > len(stream):
                    raise ConfigurationError(
                        "prefetched keystream shorter than plaintext"
                    )
                body = xor(plaintext, stream)
            else:
                blocks = []
                for counter in range((plen_i + digest_bytes - 1) // digest_bytes):
                    inner = inner0.copy()
                    inner.update(enc_domain + nonce + counter.to_bytes(4, "big"))
                    outer = outer0.copy()
                    outer.update(inner.digest())
                    blocks.append(outer.digest())
                body = xor(plaintext, b"".join(blocks))
            nonce_body = nonce + body
            inner = inner0.copy()
            inner.update(mac_domain + nonce_body)
            outer = outer0.copy()
            outer.update(inner.digest())
            append(nonce_body + outer.digest()[:TAG_LEN])
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.encrypts").inc(n)
        _ledger.add_op("aead.encrypts", n)
    return out


def _encrypt_many_lanes(
    keys: "list[bytes] | tuple[bytes, ...]",
    payloads: "list[bytes] | tuple[bytes, ...]",
    nonces: list[bytes],
    plen: int,
) -> list[bytes]:
    """The lane-engine path of :func:`encrypt_many`.

    Both HMAC passes (keystream and tag) run as numpy lane batches under
    per-entry key states; XOR and assembly are whole-batch array ops.
    Byte-identical to the stdlib loop.
    """
    n = len(keys)
    for key in keys:
        if len(key) < 16:
            raise ConfigurationError("AEAD key must be at least 16 bytes")
    inner_states, outer_states = _lanes.key_states_many(keys)
    enc_domain = _ENC_DOMAIN
    zero_ctr = _ZERO_CTR
    streams = _lanes.hmac_many_with_states(
        inner_states,
        outer_states,
        [enc_domain + nonce + zero_ctr for nonce in nonces],
    )
    dlen = len(_MAC_DOMAIN)
    width = dlen + NONCE_LEN + plen
    plain = _np.frombuffer(b"".join(payloads), dtype=_np.uint8).reshape(n, plen)
    stream_mat = _np.frombuffer(b"".join(streams), dtype=_np.uint8).reshape(n, 32)[
        :, :plen
    ]
    messages = _np.empty((n, width), dtype=_np.uint8)
    messages[:, :dlen] = _np.frombuffer(_MAC_DOMAIN, dtype=_np.uint8)
    messages[:, dlen : dlen + NONCE_LEN] = _np.frombuffer(
        b"".join(nonces), dtype=_np.uint8
    ).reshape(n, NONCE_LEN)
    _np.bitwise_xor(plain, stream_mat, out=messages[:, dlen + NONCE_LEN :])
    flat_messages = messages.tobytes()
    tags = _lanes.hmac_many_with_states(
        inner_states,
        outer_states,
        [flat_messages[i * width : (i + 1) * width] for i in range(n)],
        TAG_LEN,
    )
    total = NONCE_LEN + plen + TAG_LEN
    cipher = _np.empty((n, total), dtype=_np.uint8)
    cipher[:, : NONCE_LEN + plen] = messages[:, dlen:]
    cipher[:, NONCE_LEN + plen :] = _np.frombuffer(
        b"".join(tags), dtype=_np.uint8
    ).reshape(n, TAG_LEN)
    flat = cipher.tobytes()
    out = [flat[i * total : (i + 1) * total] for i in range(n)]
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.encrypts").inc(n)
        _ledger.add_op("aead.encrypts", n)
    return out


def decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt and authenticate ``ciphertext`` under ``key``.

    Raises:
        DecryptionError: if the ciphertext is malformed, was produced under a
            different key, or was modified in transit.  This is the signal
            LBL-ORTOA's server uses to discard the wrong table entry.
    """
    ipad, opad = key_schedule(key)
    if len(ciphertext) < NONCE_LEN + TAG_LEN:
        if _obs.enabled:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc()
            _ledger.add_op("aead.decrypt_failures")
        raise DecryptionError("ciphertext too short")
    nonce = ciphertext[:NONCE_LEN]
    body = ciphertext[NONCE_LEN:-TAG_LEN]
    tag = ciphertext[-TAG_LEN:]
    sha = _DIGEST
    expected = sha(opad + sha(ipad + _MAC_DOMAIN + nonce + body).digest()).digest()[
        :TAG_LEN
    ]
    if not hmac.compare_digest(tag, expected):
        if _obs.enabled:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc()
            _ledger.add_op("aead.decrypt_failures")
        raise DecryptionError("authentication tag mismatch")
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.decrypts").inc()
        _ledger.add_op("aead.decrypts")
    return _xor(body, _keystream(ipad, opad, nonce, len(body)))


def try_decrypt(key: bytes, ciphertext: bytes) -> bytes | None:
    """Like :func:`decrypt` but returns ``None`` instead of raising.

    Convenience for the LBL server's try-both-entries loop.
    """
    try:
        return decrypt(key, ciphertext)
    except DecryptionError:
        return None


def open_any(
    key: bytes, ciphertexts: "list[bytes] | tuple[bytes, ...]"
) -> tuple[int, bytes] | None:
    """Find and open the one ciphertext that ``key`` decrypts, if any.

    The LBL base-protocol server holds one label and a table of ``2^y``
    ciphertexts of which exactly one is keyed by that label.  This scan
    computes the label's key schedule once and reuses it across candidates,
    instead of re-running the full :func:`decrypt` setup per entry.
    Verdicts match a sequential ``try_decrypt`` loop exactly.

    Args:
        key: Symmetric key, at least 16 bytes.
        ciphertexts: Candidate ciphertexts, scanned in order.

    Returns:
        ``(index, plaintext)`` of the first ciphertext that authenticates, or
        ``None`` if none does.
    """
    ipad, opad = key_schedule(key)
    sha = _DIGEST
    mac_head = ipad + _MAC_DOMAIN
    compare = hmac.compare_digest
    failures = 0
    found: tuple[int, bytes] | None = None
    n = len(ciphertexts)
    if _lanes.use_lanes(n) and all(
        len(c) >= NONCE_LEN + TAG_LEN for c in ciphertexts
    ):
        # One lane pass computes every candidate's expected tag; the single
        # authenticating entry (if any) is then opened scalar.  The verdict —
        # first index whose tag matches — is identical to the scan below.
        state = _lanes.key_state(key)
        expected_tags = _lanes.hmac_many_with_state(
            state[0],
            state[1],
            [_MAC_DOMAIN + c[:-TAG_LEN] for c in ciphertexts],
            TAG_LEN,
        )
        for index, ciphertext in enumerate(ciphertexts):
            if compare(ciphertext[-TAG_LEN:], expected_tags[index]):
                nonce = ciphertext[:NONCE_LEN]
                body = ciphertext[NONCE_LEN:-TAG_LEN]
                found = (
                    index,
                    _xor(body, _keystream(ipad, opad, nonce, len(body))),
                )
                break
            failures += 1
        if _obs.enabled:
            if failures:
                REGISTRY.counter("crypto.aead.decrypt_failures").inc(failures)
                _ledger.add_op("aead.decrypt_failures", failures)
            if found is not None:
                REGISTRY.counter("crypto.aead.decrypts").inc()
                _ledger.add_op("aead.decrypts")
        return found
    for index, ciphertext in enumerate(ciphertexts):
        if len(ciphertext) < NONCE_LEN + TAG_LEN:
            failures += 1
            continue
        body_end = len(ciphertext) - TAG_LEN
        expected = sha(opad + sha(mac_head + ciphertext[:body_end]).digest()).digest()
        if compare(ciphertext[body_end:], expected[:TAG_LEN]):
            nonce = ciphertext[:NONCE_LEN]
            body = ciphertext[NONCE_LEN:body_end]
            found = (index, _xor(body, _keystream(ipad, opad, nonce, len(body))))
            break
        failures += 1
    if _obs.enabled:
        if failures:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc(failures)
            _ledger.add_op("aead.decrypt_failures", failures)
        if found is not None:
            REGISTRY.counter("crypto.aead.decrypts").inc()
            _ledger.add_op("aead.decrypts")
    return found


def open_many(
    keys: "list[bytes] | tuple[bytes, ...]",
    ciphertexts: "list[bytes] | tuple[bytes, ...]",
) -> "list[bytes | None]":
    """Open ``ciphertexts[i]`` under ``keys[i]`` for every ``i``, batched.

    The point-and-permute LBL server knows the designated slot per group, so
    its loop is one ``(label, ciphertext)`` pair per group rather than a
    scan.  This fuses the per-pair key schedule, tag check, and keystream
    into one pass (lane-engine batched past the calibrated threshold) and
    returns ``None`` exactly where a sequential :func:`try_decrypt` would —
    same verdicts, same failure counts.
    """
    n = len(keys)
    if len(ciphertexts) != n:
        raise ConfigurationError(f"{n} keys for {len(ciphertexts)} ciphertexts")
    compare = hmac.compare_digest
    out: "list[bytes | None]" = []
    append = out.append
    failures = 0
    opened = 0
    min_len = NONCE_LEN + TAG_LEN
    if _lanes.use_lanes(n):
        length = len(ciphertexts[0])
        body_len = length - min_len
        if 0 < body_len <= _DIGEST_BYTES and all(
            len(c) == length for c in ciphertexts
        ):
            for key in keys:
                if len(key) < 16:
                    raise ConfigurationError("AEAD key must be at least 16 bytes")
            inner_states, outer_states = _lanes.key_states_many(keys)
            expected_tags = _lanes.hmac_many_with_states(
                inner_states,
                outer_states,
                [_MAC_DOMAIN + c[:-TAG_LEN] for c in ciphertexts],
                TAG_LEN,
            )
            streams = _lanes.hmac_many_with_states(
                inner_states,
                outer_states,
                [_ENC_DOMAIN + c[:NONCE_LEN] + _ZERO_CTR for c in ciphertexts],
            )
            bodies = _np.frombuffer(
                b"".join(c[NONCE_LEN:-TAG_LEN] for c in ciphertexts),
                dtype=_np.uint8,
            ).reshape(n, body_len)
            stream_mat = _np.frombuffer(b"".join(streams), dtype=_np.uint8).reshape(
                n, 32
            )[:, :body_len]
            plain = (bodies ^ stream_mat).tobytes()
            for index, ciphertext in enumerate(ciphertexts):
                if compare(ciphertext[-TAG_LEN:], expected_tags[index]):
                    append(plain[index * body_len : (index + 1) * body_len])
                    opened += 1
                else:
                    append(None)
                    failures += 1
            if _obs.enabled:
                if failures:
                    REGISTRY.counter("crypto.aead.decrypt_failures").inc(failures)
                    _ledger.add_op("aead.decrypt_failures", failures)
                if opened:
                    REGISTRY.counter("crypto.aead.decrypts").inc(opened)
                    _ledger.add_op("aead.decrypts", opened)
            return out
    sha = _DIGEST
    ipad_trans = _IPAD_TRANS
    opad_trans = _OPAD_TRANS
    mac_domain = _MAC_DOMAIN
    enc_domain = _ENC_DOMAIN
    zero_ctr = _ZERO_CTR
    digest_bytes = _DIGEST_BYTES
    from_bytes = int.from_bytes
    block = _BLOCK
    for key, ciphertext in zip(keys, ciphertexts):
        if len(key) < 16:
            raise ConfigurationError("AEAD key must be at least 16 bytes")
        if len(ciphertext) < min_len:
            append(None)
            failures += 1
            continue
        padded = (key if len(key) <= block else sha(key).digest()).ljust(
            block, b"\x00"
        )
        ipad = padded.translate(ipad_trans)
        opad = padded.translate(opad_trans)
        body_end = len(ciphertext) - TAG_LEN
        expected = sha(
            opad + sha(ipad + mac_domain + ciphertext[:body_end]).digest()
        ).digest()
        if compare(ciphertext[body_end:], expected[:TAG_LEN]):
            body = ciphertext[NONCE_LEN:body_end]
            body_len = body_end - NONCE_LEN
            if 0 < body_len <= digest_bytes:
                # Inlined one-block keystream (every LBL label payload):
                # byte-identical to ``_xor(body, _keystream(...))`` without
                # two function calls per opened pair.
                stream = sha(
                    opad
                    + sha(
                        ipad + enc_domain + ciphertext[:NONCE_LEN] + zero_ctr
                    ).digest()
                ).digest()
                append(
                    (
                        from_bytes(body, "big")
                        ^ from_bytes(stream[:body_len], "big")
                    ).to_bytes(body_len, "big")
                )
            else:
                append(
                    _xor(
                        body,
                        _keystream(ipad, opad, ciphertext[:NONCE_LEN], body_len),
                    )
                )
            opened += 1
        else:
            append(None)
            failures += 1
    if _obs.enabled:
        if failures:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc(failures)
            _ledger.add_op("aead.decrypt_failures", failures)
        if opened:
            REGISTRY.counter("crypto.aead.decrypts").inc(opened)
            _ledger.add_op("aead.decrypts", opened)
    return out


__all__ = [
    "encrypt",
    "encrypt_many",
    "decrypt",
    "try_decrypt",
    "open_any",
    "open_many",
    "key_schedule",
    "keyed_states",
    "prefetch_table",
    "prefetch_keystreams",
    "ciphertext_len",
    "NONCE_LEN",
    "TAG_LEN",
]
