"""Authenticated encryption with detectable decryption failure.

LBL-ORTOA's server receives, per label group, a small table of ciphertexts
and must discover which one its stored label can open (paper §5.2 step 2.1:
"LBL-ORTOA uses authenticated encryption to ensure the server identifies
successful decryptions").  This module provides exactly that primitive:

* encrypt-then-MAC under a single key with domain-separated HMAC-SHA256
  invocations — keystream blocks are ``HMAC(key, "aead-enc" || nonce || ctr)``
  and the tag is ``HMAC(key, "aead-mac" || nonce || body)``.  The two domains
  are distinct fixed-length prefixes, so the PRF inputs can never collide and
  the keystream/tag outputs are computationally independent (standard PRF
  domain separation); one HMAC key schedule serves both directions, which is
  what makes the per-table-entry cost two HMAC invocations instead of four.
* a keystream built from HMAC-SHA256 in counter mode (a PRF in CTR mode is a
  standard stream cipher construction),
* :func:`decrypt` raising :class:`~repro.errors.DecryptionError` on a wrong
  key or tampered ciphertext.

The ciphertext layout is ``nonce(NONCE_LEN) || body(len(pt)) || tag(TAG_LEN)``.
For ORTOA's label encryption the key (a fresh PRF label) is used at most once
per direction, but a random nonce is included anyway so the primitive is safe
under key reuse by other callers (e.g. the TEE variant's value encryption).

Batch entry points serve the two hot loops of the LBL protocol:
:func:`encrypt_many` builds a proxy's whole ciphertext table with nonce
generation and per-entry setup hoisted out of the loop, and :func:`open_any`
runs the server's try-every-entry scan computing the stored label's key
schedule exactly once.  Both are byte-compatible with the scalar functions
(the golden-vector tests pin the exact ciphertext bytes for fixed nonces).

HMAC is evaluated in its explicit RFC 2104 form — ``sha256(k_opad ||
sha256(k_ipad || msg))`` with the padded keys produced by a C-speed
``bytes.translate`` — because driving raw ``hashlib`` one-shots is
measurably faster than the ``hmac`` module's object machinery while
producing identical bytes.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.errors import ConfigurationError, DecryptionError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY

NONCE_LEN = 12
TAG_LEN = 16
_DIGEST = hashlib.sha256
_DIGEST_BYTES = 32
_BLOCK = 64

# HMAC ipad/opad as byte-translation tables (see module docstring).
_IPAD_TRANS = bytes(b ^ 0x36 for b in range(256))
_OPAD_TRANS = bytes(b ^ 0x5C for b in range(256))

# Fixed-length, distinct domain prefixes keeping keystream and tag inputs
# disjoint under the shared key.
_ENC_DOMAIN = b"aead-enc"
_MAC_DOMAIN = b"aead-mac"
_ZERO_CTR = b"\x00\x00\x00\x00"


def ciphertext_len(plaintext_len: int) -> int:
    """Length in bytes of a ciphertext for a plaintext of ``plaintext_len``."""
    return NONCE_LEN + plaintext_len + TAG_LEN


def key_schedule(key: bytes) -> tuple[bytes, bytes]:
    """The ``(ipad_block, opad_block)`` HMAC-SHA256 key schedule of ``key``.

    ``HMAC(key, msg) == sha256(opad_block || sha256(ipad_block || msg))`` —
    the RFC 2104 definition.  Exposed so callers that know a key will be used
    soon (e.g. the LBL proxy's label cache) can precompute the schedule off
    the critical path and hand it back via ``encrypt_many(..., schedules=…)``.

    Raises:
        ConfigurationError: if the key is shorter than 16 bytes.
    """
    if len(key) < 16:
        raise ConfigurationError("AEAD key must be at least 16 bytes")
    if len(key) > _BLOCK:
        key = _DIGEST(key).digest()
    padded = key.ljust(_BLOCK, b"\x00")
    return padded.translate(_IPAD_TRANS), padded.translate(_OPAD_TRANS)


def _keystream(ipad: bytes, opad: bytes, nonce: bytes, length: int) -> bytes:
    sha = _DIGEST
    head = ipad + _ENC_DOMAIN + nonce
    if length <= _DIGEST_BYTES:
        # One-block fast path — every LBL label payload lands here.
        return sha(opad + sha(head + _ZERO_CTR).digest()).digest()[:length]
    blocks = []
    for counter in range((length + _DIGEST_BYTES - 1) // _DIGEST_BYTES):
        blocks.append(
            sha(opad + sha(head + counter.to_bytes(4, "big")).digest()).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, keystream: bytes) -> bytes:
    """XOR ``data`` with a keystream of at least the same length."""
    n = len(data)
    if n == 0:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream[:n], "big")
    ).to_bytes(n, "big")


def encrypt(key: bytes, plaintext: bytes, *, nonce: bytes | None = None) -> bytes:
    """Encrypt ``plaintext`` under ``key`` with integrity protection.

    Args:
        key: Symmetric key, at least 16 bytes.
        plaintext: Message to protect (may be empty).
        nonce: Optional explicit nonce (exactly ``NONCE_LEN`` bytes); omit to
            draw a fresh random one.  Deterministic tests use this hook.

    Returns:
        ``nonce || ciphertext-body || tag``.
    """
    ipad, opad = key_schedule(key)
    if nonce is None:
        nonce = secrets.token_bytes(NONCE_LEN)
    elif len(nonce) != NONCE_LEN:
        raise ConfigurationError(f"nonce must be exactly {NONCE_LEN} bytes")
    body = _xor(plaintext, _keystream(ipad, opad, nonce, len(plaintext)))
    sha = _DIGEST
    tag = sha(opad + sha(ipad + _MAC_DOMAIN + nonce + body).digest()).digest()[:TAG_LEN]
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.encrypts").inc()
    return nonce + body + tag


def encrypt_many(
    keys: "list[bytes] | tuple[bytes, ...]",
    payloads: "list[bytes] | tuple[bytes, ...]",
    *,
    nonces: "list[bytes] | None" = None,
    schedules: "list[tuple[bytes, bytes]] | None" = None,
) -> list[bytes]:
    """Encrypt ``payloads[i]`` under ``keys[i]`` for every ``i``, batched.

    Nonce generation (one ``secrets`` draw for the whole batch) and
    per-entry setup are hoisted out of the loop; each output is
    byte-compatible with :func:`encrypt` and opens with :func:`decrypt`.

    Args:
        keys: One symmetric key (≥ 16 bytes) per payload.
        payloads: Plaintexts to protect.
        nonces: Optional explicit nonces (deterministic tests); defaults to
            fresh random nonces.
        schedules: Optional precomputed :func:`key_schedule` output per key
            (e.g. from the proxy's label cache); each pair MUST match its
            key or the ciphertext will not open under that key.

    Returns:
        One ``nonce || body || tag`` ciphertext per input, in order.
    """
    n = len(keys)
    if len(payloads) != n:
        raise ConfigurationError(f"{n} keys for {len(payloads)} payloads")
    if nonces is None:
        # One entropy draw for the whole batch; the slices are NONCE_LEN by
        # construction, so the per-entry length check is skipped below.
        pool = secrets.token_bytes(NONCE_LEN * n)
        nonces = [pool[i * NONCE_LEN : (i + 1) * NONCE_LEN] for i in range(n)]
    else:
        if len(nonces) != n:
            raise ConfigurationError(f"{n} keys for {len(nonces)} nonces")
        for nonce in nonces:
            if len(nonce) != NONCE_LEN:
                raise ConfigurationError(f"nonce must be exactly {NONCE_LEN} bytes")
    if schedules is not None and len(schedules) != n:
        raise ConfigurationError(f"{n} keys for {len(schedules)} key schedules")
    sha = _DIGEST
    ipad_trans = _IPAD_TRANS
    opad_trans = _OPAD_TRANS
    enc_domain = _ENC_DOMAIN
    mac_domain = _MAC_DOMAIN
    zero_ctr = _ZERO_CTR
    from_bytes = int.from_bytes
    digest_bytes = _DIGEST_BYTES
    block = _BLOCK
    out: list[bytes] = []
    append = out.append
    # The loops below are key_schedule + _keystream + tag inlined into
    # straight-line hashlib one-shots — byte-identical to the scalar path
    # (golden-pinned), but without per-entry function overhead.  One LBL
    # table build runs this num_groups * 2^y times, which makes it the
    # hottest loop in the whole proxy.
    if schedules is None:
        pairs = []
        pairs_append = pairs.append
        for key in keys:
            if len(key) < 16:
                raise ConfigurationError("AEAD key must be at least 16 bytes")
            padded = (key if len(key) <= block else sha(key).digest()).ljust(
                block, b"\x00"
            )
            pairs_append((padded.translate(ipad_trans), padded.translate(opad_trans)))
        schedules = pairs
    for (ipad, opad), plaintext, nonce in zip(schedules, payloads, nonces):
        plen = len(plaintext)
        if 0 < plen <= digest_bytes:
            keystream = sha(
                opad + sha(ipad + enc_domain + nonce + zero_ctr).digest()
            ).digest()
            body = (
                from_bytes(plaintext, "big") ^ from_bytes(keystream[:plen], "big")
            ).to_bytes(plen, "big")
        elif plen == 0:
            body = b""
        else:
            body = _xor(plaintext, _keystream(ipad, opad, nonce, plen))
        nonce_body = nonce + body
        append(
            nonce_body
            + sha(opad + sha(ipad + mac_domain + nonce_body).digest()).digest()[:TAG_LEN]
        )
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.encrypts").inc(n)
    return out


def decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt and authenticate ``ciphertext`` under ``key``.

    Raises:
        DecryptionError: if the ciphertext is malformed, was produced under a
            different key, or was modified in transit.  This is the signal
            LBL-ORTOA's server uses to discard the wrong table entry.
    """
    ipad, opad = key_schedule(key)
    if len(ciphertext) < NONCE_LEN + TAG_LEN:
        if _obs.enabled:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc()
        raise DecryptionError("ciphertext too short")
    nonce = ciphertext[:NONCE_LEN]
    body = ciphertext[NONCE_LEN:-TAG_LEN]
    tag = ciphertext[-TAG_LEN:]
    sha = _DIGEST
    expected = sha(opad + sha(ipad + _MAC_DOMAIN + nonce + body).digest()).digest()[
        :TAG_LEN
    ]
    if not hmac.compare_digest(tag, expected):
        if _obs.enabled:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc()
        raise DecryptionError("authentication tag mismatch")
    if _obs.enabled:
        REGISTRY.counter("crypto.aead.decrypts").inc()
    return _xor(body, _keystream(ipad, opad, nonce, len(body)))


def try_decrypt(key: bytes, ciphertext: bytes) -> bytes | None:
    """Like :func:`decrypt` but returns ``None`` instead of raising.

    Convenience for the LBL server's try-both-entries loop.
    """
    try:
        return decrypt(key, ciphertext)
    except DecryptionError:
        return None


def open_any(
    key: bytes, ciphertexts: "list[bytes] | tuple[bytes, ...]"
) -> tuple[int, bytes] | None:
    """Find and open the one ciphertext that ``key`` decrypts, if any.

    The LBL base-protocol server holds one label and a table of ``2^y``
    ciphertexts of which exactly one is keyed by that label.  This scan
    computes the label's key schedule once and reuses it across candidates,
    instead of re-running the full :func:`decrypt` setup per entry.
    Verdicts match a sequential ``try_decrypt`` loop exactly.

    Args:
        key: Symmetric key, at least 16 bytes.
        ciphertexts: Candidate ciphertexts, scanned in order.

    Returns:
        ``(index, plaintext)`` of the first ciphertext that authenticates, or
        ``None`` if none does.
    """
    ipad, opad = key_schedule(key)
    sha = _DIGEST
    mac_head = ipad + _MAC_DOMAIN
    compare = hmac.compare_digest
    failures = 0
    found: tuple[int, bytes] | None = None
    for index, ciphertext in enumerate(ciphertexts):
        if len(ciphertext) < NONCE_LEN + TAG_LEN:
            failures += 1
            continue
        body_end = len(ciphertext) - TAG_LEN
        expected = sha(opad + sha(mac_head + ciphertext[:body_end]).digest()).digest()
        if compare(ciphertext[body_end:], expected[:TAG_LEN]):
            nonce = ciphertext[:NONCE_LEN]
            body = ciphertext[NONCE_LEN:body_end]
            found = (index, _xor(body, _keystream(ipad, opad, nonce, len(body))))
            break
        failures += 1
    if _obs.enabled:
        if failures:
            REGISTRY.counter("crypto.aead.decrypt_failures").inc(failures)
        if found is not None:
            REGISTRY.counter("crypto.aead.decrypts").inc()
    return found


__all__ = [
    "encrypt",
    "encrypt_many",
    "decrypt",
    "try_decrypt",
    "open_any",
    "key_schedule",
    "ciphertext_len",
    "NONCE_LEN",
    "TAG_LEN",
]
