"""Key management for ORTOA deployments.

A deployment owns a single master secret from which every other key is
derived with domain separation: the key-encoding PRF, the label PRF, the
point-and-permute bit PRF, and the symmetric data key used by the TEE and
baseline variants.  Deriving (rather than storing) keys keeps proxy state
small — the paper's proxy stores only access counters (§5.3.1) plus this one
secret.
"""

from __future__ import annotations

import secrets

from repro.crypto.prf import Prf
from repro.errors import ConfigurationError

MASTER_KEY_LEN = 32


class KeyChain:
    """Derives all protocol keys from one master secret.

    Args:
        master_key: 32-byte master secret; omit to generate a fresh one.
        label_bits: Output size ``r`` of the label PRF in bits.
    """

    def __init__(self, master_key: bytes | None = None, *, label_bits: int = 128) -> None:
        if master_key is None:
            master_key = secrets.token_bytes(MASTER_KEY_LEN)
        if len(master_key) < 16:
            raise ConfigurationError("master key must be at least 16 bytes")
        if label_bits % 8 != 0 or label_bits <= 0:
            raise ConfigurationError("label_bits must be a positive multiple of 8")
        self._master = Prf(master_key, out_bytes=32)
        self.label_bits = label_bits
        self.key_encoding_prf = Prf(self._master.derive_subkey("key-encoding"), out_bytes=16)
        self.label_prf = Prf(self._master.derive_subkey("labels"), out_bytes=label_bits // 8)
        self.permute_prf = Prf(self._master.derive_subkey("point-and-permute"), out_bytes=4)
        self.data_key = self._master.derive_subkey("data-encryption")

    def encode_key(self, key: str) -> bytes:
        """Server-side identifier for datastore key ``k`` (``PRF(k)``, §2.2)."""
        return self.key_encoding_prf.encode_key(key)


__all__ = ["KeyChain", "MASTER_KEY_LEN"]
