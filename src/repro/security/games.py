"""The ROR-RW security game of the paper's Figure 5, run empirically.

``Real`` feeds an access sequence through the actual protocol and collects
the server-visible messages; ``Ideal`` feeds only the keys to a simulator.
:class:`RorRwGame` flips a fair coin per round, shows the chosen output to a
caller-supplied adversary, and reports the measured advantage
``|P[guess=real | real] - P[guess=real | ideal]|``.

A secure implementation should leave any efficient adversary with advantage
statistically indistinguishable from zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.lbl import LblOrtoa
from repro.errors import ConfigurationError
from repro.security.simulators import LblSimulator
from repro.types import Operation, Request, StoreConfig


@dataclass(frozen=True, slots=True)
class Access:
    """One entry of the access sequence A (op, key, value) of §7."""

    op: Operation
    key: str
    value: bytes | None = None

    def to_request(self) -> Request:
        """Convert this access into a protocol Request."""
        if self.op.is_read:
            return Request.read(self.key)
        return Request.write(self.key, self.value or b"")


#: An adversary receives the (serialized) output sequence and guesses
#: ``True`` for "real".
Adversary = Callable[[list[bytes]], bool]


def real_lbl_output(
    config: StoreConfig,
    accesses: Sequence[Access],
    rng: random.Random | None = None,
) -> list[bytes]:
    """``Out_Real`` for LBL-ORTOA: the serialized server-bound messages."""
    protocol = LblOrtoa(config, rng=rng)
    protocol.initialize({a.key: b"" for a in accesses})
    output = []
    for access in accesses:
        request = access.to_request()
        if request.op.is_write:
            request = Request.write(request.key, config.pad(request.value or b""))
        lbl_request, _ = protocol.proxy.prepare(request)
        # Keep proxy and server state consistent for subsequent accesses.
        protocol.server.process(lbl_request)
        output.append(lbl_request.to_bytes())
    return output


def ideal_lbl_output(
    config: StoreConfig,
    accesses: Sequence[Access],
    rng: random.Random | None = None,
) -> list[bytes]:
    """``Out_Sim`` for LBL-ORTOA: the simulator sees keys only (Figure 7)."""
    simulator = LblSimulator(config, rng=rng)
    return [simulator.simulate(access.key).to_bytes() for access in accesses]


class RorRwGame:
    """Play the Figure 5 game ``rounds`` times and measure an adversary.

    Args:
        real: Callable producing ``Out_Real`` for an access sequence.
        ideal: Callable producing ``Out_Sim`` for the same sequence.
        rng: Coin-flip randomness (seed for reproducible experiments).
    """

    def __init__(
        self,
        real: Callable[[Sequence[Access]], list[bytes]],
        ideal: Callable[[Sequence[Access]], list[bytes]],
        rng: random.Random | None = None,
    ) -> None:
        self._real = real
        self._ideal = ideal
        self._rng = rng or random.Random()

    def advantage(
        self,
        adversary: Adversary,
        accesses: Sequence[Access],
        rounds: int = 40,
    ) -> float:
        """Empirical advantage of ``adversary`` over ``rounds`` coin flips."""
        if rounds < 2:
            raise ConfigurationError("need at least 2 rounds to measure advantage")
        guesses_real_when_real = 0
        guesses_real_when_ideal = 0
        reals = 0
        ideals = 0
        for _ in range(rounds):
            if self._rng.random() < 0.5:
                reals += 1
                if adversary(self._real(accesses)):
                    guesses_real_when_real += 1
            else:
                ideals += 1
                if adversary(self._ideal(accesses)):
                    guesses_real_when_ideal += 1
        p_real = guesses_real_when_real / reals if reals else 0.0
        p_ideal = guesses_real_when_ideal / ideals if ideals else 0.0
        return abs(p_real - p_ideal)


def uniform_random_accesses(
    keys: Sequence[str],
    count: int,
    value_len: int,
    rng: random.Random,
) -> list[Access]:
    """The workload of §6: uniform keys, uniform read/write coin."""
    accesses = []
    for _ in range(count):
        key = rng.choice(list(keys))
        if rng.random() < 0.5:
            accesses.append(Access(Operation.READ, key))
        else:
            accesses.append(Access(Operation.WRITE, key, rng.randbytes(value_len)))
    return accesses


__all__ = [
    "Access",
    "Adversary",
    "RorRwGame",
    "real_lbl_output",
    "ideal_lbl_output",
    "uniform_random_accesses",
]
