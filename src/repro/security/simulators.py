"""Ideal-world simulators for the ROR-RW game (paper Figure 7 and §11.1).

Each simulator is stateful and, per the security definition, receives only
the *key* of each access — never the operation type or any value.  Its job
is to emit messages with the same distribution as the real protocol's
server-visible output.
"""

from __future__ import annotations

import random
import secrets

from repro.core.lbl.proxy import DECRYPT_INDEX_BYTES
from repro.core.messages import (
    FheAccessRequest,
    LblAccessRequest,
    TeeAccessRequest,
)
from repro.crypto import aead
from repro.crypto.fhe import FheParams, FheScheme
from repro.types import StoreConfig


class LblSimulator:
    """Figure 7's Simulator, generalized to ``y``-bit groups.

    Keeps one random "old label" per (key, group).  Per access it samples a
    fresh random new label, encrypts it under the stored old label, fills
    the remaining ``2^y - 1`` table slots with encryptions of zeros under
    *unrelated* random labels (the server can't open them, so their content
    is irrelevant), shuffles, and rotates its stored label.
    """

    def __init__(self, config: StoreConfig, rng: random.Random | None = None) -> None:
        self.config = config
        self.label_len = config.label_bits // 8
        self._rng = rng or random.Random()
        self._state: dict[str, list[bytes]] = {}
        self._encoded: dict[str, bytes] = {}

    def _ensure_key(self, key: str) -> None:
        if key not in self._state:
            num_groups = self.config.num_groups
            self._state[key] = [secrets.token_bytes(self.label_len) for _ in range(num_groups)]
            self._encoded[key] = secrets.token_bytes(16)

    def simulate(self, key: str) -> LblAccessRequest:
        """Produce one simulated server-bound message for an access to ``key``."""
        self._ensure_key(key)
        table_size = 1 << self.config.group_bits
        payload_pad = DECRYPT_INDEX_BYTES if self.config.point_and_permute else 0
        tables = []
        for index in range(self.config.num_groups):
            old_label = self._state[key][index]
            new_label = secrets.token_bytes(self.label_len)
            payload = new_label + secrets.token_bytes(payload_pad)
            entries = [aead.encrypt(old_label, payload)]
            for _ in range(table_size - 1):
                decoy_key = secrets.token_bytes(self.label_len)
                entries.append(aead.encrypt(decoy_key, bytes(len(payload))))
            self._rng.shuffle(entries)
            tables.append(tuple(entries))
            self._state[key][index] = new_label
        return LblAccessRequest(self._encoded[key], tuple(tables))


class TeeSimulator:
    """Simulator for TEE-ORTOA: dummy selector and dummy value encryptions.

    Security reduces to IND-CPA of the symmetric scheme (§11.1): the
    simulator encrypts fixed dummies under its own key; a distinguisher
    between this and the real requests breaks the encryption.
    """

    def __init__(self, config: StoreConfig) -> None:
        self.config = config
        self._key = secrets.token_bytes(32)
        self._encoded: dict[str, bytes] = {}

    def simulate(self, key: str) -> TeeAccessRequest:
        """One simulated server-bound message for an access to ``key``."""
        encoded = self._encoded.setdefault(key, secrets.token_bytes(16))
        return TeeAccessRequest(
            encoded_key=encoded,
            selector_ct=aead.encrypt(self._key, b"\x00"),
            new_value_ct=aead.encrypt(self._key, bytes(self.config.value_len)),
        )


class FheSimulator:
    """Simulator for FHE-ORTOA: three fresh encryptions of dummy plaintexts."""

    def __init__(self, config: StoreConfig, fhe_params: FheParams | None = None) -> None:
        self.config = config
        self._scheme = FheScheme(fhe_params or FheParams())
        self._encoded: dict[str, bytes] = {}

    def simulate(self, key: str) -> FheAccessRequest:
        """One simulated server-bound message for an access to ``key``."""
        encoded = self._encoded.setdefault(key, secrets.token_bytes(16))
        return FheAccessRequest(
            encoded_key=encoded,
            c_r_ct=self._scheme.encrypt_scalar(0).to_bytes(),
            c_w_ct=self._scheme.encrypt_scalar(0).to_bytes(),
            new_value_ct=self._scheme.encrypt_bytes(bytes(self.config.value_len)).to_bytes(),
        )


__all__ = ["LblSimulator", "TeeSimulator", "FheSimulator"]
