"""The IND-CPA game for the library's symmetric encryption.

Both the TEE security argument (§11.1: "Assuming that the encryption scheme
is IND-CPA...") and LBL's hybrid proof lean on the AEAD's chosen-plaintext
indistinguishability.  This module runs the textbook left-or-right game
empirically against :mod:`repro.crypto.aead`:

1. the challenger picks a random bit ``b``;
2. the adversary submits message pairs ``(m0, m1)`` and receives
   ``Enc(m_b)`` for each;
3. the adversary guesses ``b``; advantage = |P[win] − 1/2| · 2.

As with the ROR-RW experiment, this bounds the adversaries we actually run
— it is a regression harness against implementation bugs (nonce reuse, a
keystream that echoes plaintext structure), not a proof.
"""

from __future__ import annotations

import random
import secrets
from typing import Callable, Sequence

from repro.crypto import aead
from repro.errors import ConfigurationError

#: An IND-CPA adversary: sees the challenge ciphertexts for its submitted
#: pairs and outputs a guess for b (0 = left messages were encrypted).
CpaAdversary = Callable[[Sequence[bytes]], int]


class IndCpaGame:
    """The left-or-right chosen-plaintext game over the AEAD.

    Args:
        rng: Challenger coin randomness (seed for reproducible runs).
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        self._rng = rng or random.Random()

    def play_round(
        self,
        pairs: Sequence[tuple[bytes, bytes]],
        adversary: CpaAdversary,
    ) -> bool:
        """One game round; returns whether the adversary guessed ``b``."""
        for m0, m1 in pairs:
            if len(m0) != len(m1):
                raise ConfigurationError(
                    "IND-CPA message pairs must have equal length"
                )
        b = self._rng.randrange(2)
        key = secrets.token_bytes(32)
        challenge = [aead.encrypt(key, pair[b]) for pair in pairs]
        return adversary(challenge) == b

    def advantage(
        self,
        pairs: Sequence[tuple[bytes, bytes]],
        adversary: CpaAdversary,
        rounds: int = 100,
    ) -> float:
        """Empirical advantage over ``rounds`` independent games."""
        if rounds < 2:
            raise ConfigurationError("need at least 2 rounds")
        wins = sum(self.play_round(pairs, adversary) for _ in range(rounds))
        return abs(wins / rounds - 0.5) * 2.0


def byte_bias_adversary(challenge: Sequence[bytes]) -> int:
    """Guess from ciphertext byte bias (defeats e.g. plaintext XOR'd with a
    short repeating pad; blind against a proper keystream)."""
    data = b"".join(challenge)
    if not data:
        return 0
    return 1 if (sum(data) / len(data)) > 127.5 else 0


def length_adversary(challenge: Sequence[bytes]) -> int:
    """Guess from total ciphertext length (defeats schemes whose ciphertext
    length depends on plaintext *content*; ours depends only on length)."""
    return sum(len(ct) for ct in challenge) % 2


def prefix_equality_adversary(challenge: Sequence[bytes]) -> int:
    """Guess 0 when two challenge ciphertexts share a prefix (defeats
    deterministic or nonce-reusing encryption of repeated plaintexts)."""
    prefixes = [ct[:16] for ct in challenge]
    return 0 if len(set(prefixes)) < len(prefixes) else 1


__all__ = [
    "IndCpaGame",
    "CpaAdversary",
    "byte_bias_adversary",
    "length_adversary",
    "prefix_equality_adversary",
]
