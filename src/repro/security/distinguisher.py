"""Distinguishers and structural checks for the empirical ROR-RW game.

Two kinds of tooling live here:

* **Structural fingerprints** — deterministic shape summaries (message
  counts and sizes) that must be *identical* across operation types.  Any
  difference is a hard leak, no statistics needed.
* **Statistical adversaries** — simple but representative attacks an
  honest-but-curious server could run over message bytes: byte-histogram
  divergence and size-feature thresholding.  The test suite drives them
  through :class:`~repro.security.games.RorRwGame` and asserts their
  advantage is negligible.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np


def shape_fingerprint(messages: Sequence[bytes]) -> tuple[tuple[int, int], ...]:
    """A deterministic summary of an output sequence: (index, size) pairs.

    Two access sequences of equal length must produce equal fingerprints
    regardless of their operation types — otherwise sizes leak.
    """
    return tuple((i, len(m)) for i, m in enumerate(messages))


def byte_histogram(messages: Sequence[bytes]) -> np.ndarray:
    """Normalized frequency of each byte value over the whole sequence."""
    counts = Counter()
    total = 0
    for message in messages:
        counts.update(message)
        total += len(message)
    hist = np.zeros(256, dtype=float)
    if total == 0:
        return hist
    for value, count in counts.items():
        hist[value] = count / total
    return hist


def byte_histogram_advantage(
    real_outputs: Sequence[Sequence[bytes]],
    ideal_outputs: Sequence[Sequence[bytes]],
) -> float:
    """Total-variation distance between real and ideal byte distributions.

    For ciphertext-only outputs both distributions should be approximately
    uniform, so the distance should shrink toward sampling noise.
    """
    real = byte_histogram([m for out in real_outputs for m in out])
    ideal = byte_histogram([m for out in ideal_outputs for m in out])
    return float(0.5 * np.abs(real - ideal).sum())


def size_advantage(
    real_outputs: Sequence[Sequence[bytes]],
    ideal_outputs: Sequence[Sequence[bytes]],
) -> float:
    """Advantage of the best threshold classifier on total output size.

    Exactly zero when real and ideal outputs always serialize to the same
    number of bytes (the case for a correct implementation).
    """
    real_sizes = sorted(sum(len(m) for m in out) for out in real_outputs)
    ideal_sizes = sorted(sum(len(m) for m in out) for out in ideal_outputs)
    candidates = sorted(set(real_sizes) | set(ideal_sizes))
    best = 0.0
    for threshold in candidates:
        p_real = sum(1 for s in real_sizes if s <= threshold) / len(real_sizes)
        p_ideal = sum(1 for s in ideal_sizes if s <= threshold) / len(ideal_sizes)
        best = max(best, abs(p_real - p_ideal))
    return best


def make_size_adversary(threshold: int):
    """An adversary guessing 'real' when the output exceeds ``threshold``."""

    def adversary(output: Sequence[bytes]) -> bool:
        return sum(len(m) for m in output) > threshold

    return adversary


def make_byte_mean_adversary(cutoff: float = 127.5):
    """An adversary thresholding on the mean byte value of the output."""

    def adversary(output: Sequence[bytes]) -> bool:
        data = b"".join(output)
        if not data:
            return False
        return (sum(data) / len(data)) > cutoff

    return adversary


def make_first_block_adversary():
    """An adversary looking for repeated leading blocks across messages.

    Catches deterministic-nonce bugs: if re-encryptions repeat, the real
    world shows duplicate prefixes while the simulator's random labels don't.
    """

    def adversary(output: Sequence[bytes]) -> bool:
        prefixes = [m[:32] for m in output if len(m) >= 32]
        return len(set(prefixes)) < len(prefixes)

    return adversary


def learned_distinguisher_accuracy(
    class_a: Sequence[Sequence[bytes]],
    class_b: Sequence[Sequence[bytes]],
) -> float:
    """Held-out accuracy of a trained linear classifier on output features.

    The strongest generic adversary in this module: featurize each output
    sequence (total size, message count, byte histogram), fit a linear
    least-squares classifier on half the samples, evaluate on the other
    half.  A leak-free pair of distributions yields ≈0.5; any systematic
    feature difference pushes it toward 1.0.

    Args:
        class_a: Labeled output sequences of one class (e.g. real / reads).
        class_b: Labeled output sequences of the other class.
    """
    if len(class_a) < 4 or len(class_b) < 4:
        raise ValueError("need at least 4 samples per class to train and test")

    def featurize(output: Sequence[bytes]) -> np.ndarray:
        sizes = np.array([len(m) for m in output], dtype=float)
        histogram = byte_histogram(output)
        return np.concatenate(
            ([sizes.sum(), sizes.mean(), len(output)], histogram)
        )

    def split(samples):
        features = np.stack([featurize(s) for s in samples])
        half = len(samples) // 2
        return features[:half], features[half:]

    train_a, test_a = split(list(class_a))
    train_b, test_b = split(list(class_b))
    train_x = np.vstack([train_a, train_b])
    train_y = np.concatenate([np.ones(len(train_a)), -np.ones(len(train_b))])
    # Ridge-regularized least squares keeps the fit stable when features
    # are collinear (histograms of uniform ciphertexts nearly are).
    gram = train_x.T @ train_x + 1e-3 * np.eye(train_x.shape[1])
    weights = np.linalg.solve(gram, train_x.T @ train_y)

    correct = int((test_a @ weights > 0).sum()) + int((test_b @ weights <= 0).sum())
    return correct / (len(test_a) + len(test_b))


__all__ = [
    "shape_fingerprint",
    "byte_histogram",
    "byte_histogram_advantage",
    "size_advantage",
    "make_size_adversary",
    "make_byte_mean_adversary",
    "make_first_block_adversary",
    "learned_distinguisher_accuracy",
]
