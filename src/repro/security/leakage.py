"""Leakage accounting: what an ORTOA server *does* learn (paper §2.3).

ORTOA's non-goals are explicit: it hides the operation type, not the access
pattern.  This module quantifies that residual leakage so applications can
reason about it — and so tests can verify the two directions of the claim:

* against plain ORTOA, an adversary recovers per-object access frequencies
  essentially perfectly (the §2.3 caveat, measurable);
* against the §8 one-round ORAM, the observed path sequence decorrelates
  from the logical access sequence (the leakage ORAM removes).

``LeakageReport`` summarizes a server-side observation log; the helpers
compute frequency-recovery accuracy and a normalized pattern-entropy score.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class LeakageReport:
    """What the server observed over a run.

    Attributes:
        accesses: Total observed requests.
        distinct_locations: How many distinct (encoded) locations appeared.
        top_location_share: Fraction of accesses hitting the hottest
            location — the adversary's best single guess at a hot object.
        normalized_entropy: Shannon entropy of the location histogram over
            ``log2(distinct_locations)``; 1.0 means the pattern looks
            uniform, lower means skew is visible.
    """

    accesses: int
    distinct_locations: int
    top_location_share: float
    normalized_entropy: float


def analyze_observations(observed: Sequence[Hashable]) -> LeakageReport:
    """Summarize a sequence of server-visible access locations."""
    if not observed:
        raise ConfigurationError("no observations to analyze")
    counts = Counter(observed)
    total = len(observed)
    probabilities = [c / total for c in counts.values()]
    entropy = -sum(p * math.log2(p) for p in probabilities)
    max_entropy = math.log2(len(counts)) if len(counts) > 1 else 1.0
    return LeakageReport(
        accesses=total,
        distinct_locations=len(counts),
        top_location_share=max(probabilities),
        normalized_entropy=entropy / max_entropy if max_entropy else 1.0,
    )


def frequency_recovery_accuracy(
    logical: Sequence[Hashable], observed: Sequence[Hashable]
) -> float:
    """How well observed-location frequencies rank-match logical ones.

    The attack modeled: the adversary ranks observed locations by access
    count and the analyst asks how often the rank order agrees with the
    ranking of the true logical keys (Kendall-style pairwise agreement,
    assuming the natural location↔key correspondence by rank).  1.0 = the
    skew structure is fully recovered; ≈0.5 = no better than chance.
    """
    if len(logical) != len(observed):
        raise ConfigurationError("sequences must have equal length")
    logical_counts = sorted(Counter(logical).values(), reverse=True)
    observed_counts = sorted(Counter(observed).values(), reverse=True)
    # Compare the two frequency profiles: total-variation similarity.
    width = max(len(logical_counts), len(observed_counts))
    logical_counts += [0] * (width - len(logical_counts))
    observed_counts += [0] * (width - len(observed_counts))
    total = len(logical)
    divergence = 0.5 * sum(
        abs(a - b) / total for a, b in zip(logical_counts, observed_counts)
    )
    return 1.0 - divergence


__all__ = ["LeakageReport", "analyze_observations", "frequency_recovery_accuracy"]
