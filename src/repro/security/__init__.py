"""Security analysis machinery for ORTOA (paper §7 and appendix §11).

The paper defines *real-vs-random read-write indistinguishability*
(ROR-RW): an adversary controlling the external server sees a sequence of
accesses and must not be able to tell whether it was produced by the real
protocol over meaningful requests or by a simulator that saw only the keys
(never the operation types or values).

* :mod:`repro.security.simulators` — the Ideal-world simulators (Figure 7
  for LBL-ORTOA, plus dummy-encryption simulators for the TEE and FHE
  variants).
* :mod:`repro.security.games` — the Real/Ideal game of Figure 5, run as an
  empirical experiment: collect both outputs, hand them to a distinguisher,
  and measure its advantage.
* :mod:`repro.security.distinguisher` — structural checks (shape equality)
  and statistical adversaries (byte histograms, size features) used by the
  test suite to certify that the implementations leak nothing observable.

Empirical indistinguishability obviously does not *prove* security — the
paper's hybrid argument does that — but it catches implementation-level
leaks (size differences, deterministic nonces, skipped shuffles) that a
proof on paper would never notice.
"""

from repro.security.distinguisher import (
    byte_histogram_advantage,
    shape_fingerprint,
    size_advantage,
)
from repro.security.games import Access, RorRwGame, real_lbl_output
from repro.security.simulators import FheSimulator, LblSimulator, TeeSimulator

__all__ = [
    "Access",
    "RorRwGame",
    "real_lbl_output",
    "LblSimulator",
    "TeeSimulator",
    "FheSimulator",
    "shape_fingerprint",
    "byte_histogram_advantage",
    "size_advantage",
]
