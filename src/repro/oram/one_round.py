"""The §8 sketch made concrete: a tree ORAM whose read **and** eviction
share a single round trip, built on ORTOA's oblivious cells.

Every tree slot (bucket, slot) is one LBL-ORTOA object storing
``block_id || payload``.  Per access the proxy walks the requested block's
path and, at *every* level, performs exactly one ORTOA cell access:

* the level that holds the requested block → an ORTOA **read** (the block
  moves to the stash),
* levels with a free slot and an eviction-compatible stash block → an ORTOA
  **write** (stash shrinks — this is the eviction that PathORAM needs a
  second round for),
* otherwise → a dummy ORTOA read of a random slot.

Because ORTOA hides which of the three happened, the server sees only "one
cell touched per level of a random path", and all of it ships in one round.

Scope note (matching the paper's sketch-level treatment): the proxy keeps a
slot directory so it knows where each block lives, and the *slot index
within a bucket* is not obfuscated — full slot privacy would add
RingORAM-style per-bucket dummies and permutation, which §8 leaves as the
full design's job.
"""

from __future__ import annotations

import random
import struct

from repro.core.lbl import LblOrtoa
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY
from repro.oram.stash import Stash
from repro.oram.tree import TreeConfig
from repro.types import Operation, Request, StoreConfig

_DUMMY_ID = (1 << 64) - 1
_SLOT_HEADER = struct.Struct(">Q")


class OneRoundOram:
    """A single-round tree ORAM over ORTOA cells.

    Args:
        num_blocks: Logical blocks (ids ``0 .. num_blocks-1``).
        value_len: Block payload size in bytes.
        keychain: Key material (generated if omitted).
        tree: Geometry; defaults to :meth:`TreeConfig.for_blocks`.
        rng: Randomness for leaf/slot choices; seed for deterministic tests.
    """

    rounds_per_access = 1

    def __init__(
        self,
        num_blocks: int,
        value_len: int,
        keychain: KeyChain | None = None,
        tree: TreeConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if num_blocks < 1 or value_len < 1:
            raise ConfigurationError("num_blocks and value_len must be >= 1")
        self.num_blocks = num_blocks
        self.value_len = value_len
        self.tree = tree or TreeConfig.for_blocks(num_blocks)
        if self.tree.capacity < num_blocks:
            raise ConfigurationError("tree too small for the block count")
        self._rng = rng or random.Random()
        cell_config = StoreConfig(
            value_len=_SLOT_HEADER.size + value_len,
            group_bits=2,
            point_and_permute=True,
        )
        self.cells = LblOrtoa(cell_config, keychain=keychain, rng=self._rng)
        self.stash = Stash()
        self._position: dict[int, int] = {}
        #: (bucket, slot) → resident block id, or None when free.
        self._directory: dict[tuple[int, int], int | None] = {}
        #: block id → (bucket, slot); absent while the block sits in the stash.
        self._location: dict[int, tuple[int, int]] = {}
        self.rounds_used = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------ #
    # Cell encoding
    # ------------------------------------------------------------------ #

    @staticmethod
    def _cell_key(bucket: int, slot: int) -> str:
        return f"cell-{bucket}-{slot}"

    def _pack(self, block_id: int, payload: bytes) -> bytes:
        return _SLOT_HEADER.pack(block_id) + payload

    def _unpack(self, cell_value: bytes) -> tuple[int, bytes]:
        (block_id,) = _SLOT_HEADER.unpack_from(cell_value, 0)
        return block_id, cell_value[_SLOT_HEADER.size:]

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def initialize(self, values: dict[int, bytes] | None = None) -> None:
        """Assign leaves, pack blocks into their paths, fill the rest empty."""
        values = values or {}
        placements: dict[tuple[int, int], int] = {}
        free_slots: dict[int, int] = {
            bucket: 0 for bucket in range(self.tree.num_buckets)
        }
        for block_id in range(self.num_blocks):
            leaf = self._rng.randrange(self.tree.num_leaves)
            self._position[block_id] = leaf
            placed = False
            for bucket in reversed(self.tree.path_buckets(leaf)):
                if free_slots[bucket] < self.tree.bucket_size:
                    slot = free_slots[bucket]
                    free_slots[bucket] += 1
                    placements[(bucket, slot)] = block_id
                    self._location[block_id] = (bucket, slot)
                    placed = True
                    break
            if not placed:
                payload = values.get(block_id, bytes(self.value_len))
                self.stash.put(block_id, payload)

        records: dict[str, bytes] = {}
        for bucket in range(self.tree.num_buckets):
            for slot in range(self.tree.bucket_size):
                block_id = placements.get((bucket, slot))
                self._directory[(bucket, slot)] = block_id
                if block_id is None:
                    cell = self._pack(_DUMMY_ID, bytes(self.value_len))
                else:
                    payload = values.get(block_id, bytes(self.value_len))
                    if len(payload) != self.value_len:
                        raise ConfigurationError(
                            f"block {block_id} payload must be {self.value_len} bytes"
                        )
                    cell = self._pack(block_id, payload)
                records[self._cell_key(bucket, slot)] = cell
        self.cells.initialize(records)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def access(self, op: Operation, block_id: int, new_value: bytes | None = None) -> bytes:
        """One single-round oblivious access; returns the pre-write value."""
        if not 0 <= block_id < self.num_blocks:
            raise ConfigurationError(f"block id {block_id} out of range")
        if op.is_write and (new_value is None or len(new_value) != self.value_len):
            raise ConfigurationError("write needs a value of the configured size")

        leaf = self._position[block_id]
        self._position[block_id] = self._rng.randrange(self.tree.num_leaves)
        self.rounds_used += 1

        # One ORTOA cell access per level — all ride the same round trip.
        for bucket in self.tree.path_buckets(leaf):
            if self._location.get(block_id, (None, None))[0] == bucket:
                self._cell_read_block(bucket, block_id)
            else:
                evicted = self._try_evict_into(bucket, exclude=block_id)
                if not evicted:
                    self._cell_dummy_read(bucket)

        if block_id not in self.stash:
            raise ProtocolError(f"block {block_id} lost: not in stash after path walk")
        value = self.stash.get(block_id)
        if op.is_write:
            assert new_value is not None
            self.stash.put(block_id, new_value)
        if _obs.enabled:
            REGISTRY.counter("oram.one_round.rounds").inc()
            REGISTRY.gauge("oram.one_round.stash_size").set(len(self.stash))
        return value

    def read(self, block_id: int) -> bytes:
        """Oblivious GET of one block (single round trip)."""
        return self.access(Operation.READ, block_id)

    def write(self, block_id: int, value: bytes) -> None:
        """Oblivious PUT of one block (single round trip)."""
        self.access(Operation.WRITE, block_id, value)

    # ------------------------------------------------------------------ #
    # The three cell operations (indistinguishable to the server)
    # ------------------------------------------------------------------ #

    def _account(self, transcript) -> None:
        self.bytes_transferred += transcript.total_bytes
        if _obs.enabled:
            REGISTRY.counter("oram.one_round.cell_accesses").inc()
            REGISTRY.counter("oram.one_round.bytes_transferred").inc(
                transcript.total_bytes
            )

    def _cell_read_block(self, bucket: int, block_id: int) -> None:
        """ORTOA-read the slot holding ``block_id`` and pull it to the stash."""
        bucket_found, slot = self._location.pop(block_id)
        if bucket_found != bucket:
            raise ProtocolError("directory inconsistency")
        transcript = self.cells.access(Request.read(self._cell_key(bucket, slot)))
        self._account(transcript)
        resident_id, payload = self._unpack(transcript.response.value)
        if resident_id != block_id:
            raise ProtocolError(
                f"cell ({bucket},{slot}) holds block {resident_id}, expected {block_id}"
            )
        self.stash.put(block_id, payload)
        self._directory[(bucket, slot)] = None

    def _try_evict_into(self, bucket: int, exclude: int) -> bool:
        """ORTOA-write one eviction-compatible stash block into a free slot."""
        free = [
            slot
            for slot in range(self.tree.bucket_size)
            if self._directory[(bucket, slot)] is None
        ]
        if not free:
            return False
        level = self._level_of(bucket)
        candidate = None
        for stash_id in self.stash.block_ids():
            if stash_id == exclude:
                continue
            if self.tree.bucket_at(self._position[stash_id], level) == bucket:
                candidate = stash_id
                break
        if candidate is None:
            return False
        slot = free[0]
        payload = self.stash.pop(candidate)
        transcript = self.cells.access(
            Request.write(self._cell_key(bucket, slot), self._pack(candidate, payload))
        )
        self._account(transcript)
        self._directory[(bucket, slot)] = candidate
        self._location[candidate] = (bucket, slot)
        if _obs.enabled:
            REGISTRY.counter("oram.one_round.blocks_evicted").inc()
        return True

    def _cell_dummy_read(self, bucket: int) -> None:
        """ORTOA-read a random slot; the result is discarded."""
        slot = self._rng.randrange(self.tree.bucket_size)
        transcript = self.cells.access(Request.read(self._cell_key(bucket, slot)))
        self._account(transcript)

    def _level_of(self, bucket: int) -> int:
        level = 0
        while bucket > 0:
            bucket = (bucket - 1) // 2
            level += 1
        return level


__all__ = ["OneRoundOram"]
