"""Tree-based ORAM schemes (paper §8, "Designing novel ORAM schemes").

ORTOA hides only the operation type; ORAM additionally hides *which* object
is accessed.  The paper sketches how ORTOA enables a tree ORAM whose read
and eviction happen in a single round.  This package implements:

* :class:`~repro.oram.path_oram.PathOram` — the classic two-round scheme
  (read a path, then shuffle-and-evict it back) used as the baseline.
* :class:`~repro.oram.one_round.OneRoundOram` — the sketched design: per
  access, exactly one slot per tree level is touched through an ORTOA-style
  oblivious cell, so reading the requested block and evicting stash blocks
  ride the same single round trip.

Shared machinery (tree geometry, stash, position map) lives in
:mod:`repro.oram.tree` and :mod:`repro.oram.stash`.
"""

from repro.oram.linear_scan import LinearScanOram
from repro.oram.one_round import OneRoundOram
from repro.oram.path_oram import PathOram
from repro.oram.tree import TreeConfig

__all__ = ["PathOram", "OneRoundOram", "LinearScanOram", "TreeConfig"]
