"""Tree geometry shared by the ORAM schemes.

A complete binary tree of height ``L`` has ``2^L`` leaves and ``2^(L+1)-1``
buckets, indexed heap-style: bucket 0 is the root, bucket ``2i+1``/``2i+2``
are the children of ``i``.  A *path* is identified by its leaf number in
``[0, 2^L)``; blocks are assigned to leaves and must live somewhere on their
leaf's root-to-leaf path (the tree-ORAM invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class TreeConfig:
    """Geometry and capacity of a bucket tree.

    Attributes:
        height: ``L``; the tree has ``2^L`` leaves and ``L+1`` levels.
        bucket_size: ``Z`` — real-block slots per bucket (PathORAM uses 4).
    """

    height: int
    bucket_size: int = 4

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ConfigurationError("tree height must be >= 1")
        if self.bucket_size < 1:
            raise ConfigurationError("bucket_size must be >= 1")

    @property
    def num_leaves(self) -> int:
        """Leaves (= assignable paths) in the tree."""
        return 1 << self.height

    @property
    def num_levels(self) -> int:
        """Levels from root to leaf inclusive."""
        return self.height + 1

    @property
    def num_buckets(self) -> int:
        """Total buckets in the complete tree."""
        return (1 << (self.height + 1)) - 1

    @property
    def capacity(self) -> int:
        """Total real-block slots in the tree."""
        return self.num_buckets * self.bucket_size

    @staticmethod
    def for_blocks(num_blocks: int, bucket_size: int = 4) -> "TreeConfig":
        """Smallest tree whose *leaf level alone* can hold ``num_blocks``.

        The standard PathORAM sizing: with ``Z >= 4``, a tree with at least
        ``N`` leaf slots keeps the stash small with high probability.
        """
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        height = 1
        while (1 << height) * bucket_size < num_blocks:
            height += 1
        return TreeConfig(height=height, bucket_size=bucket_size)

    def path_buckets(self, leaf: int) -> list[int]:
        """Bucket indices on the root→leaf path for ``leaf``."""
        if not 0 <= leaf < self.num_leaves:
            raise ConfigurationError(f"leaf {leaf} out of range")
        bucket = leaf + self.num_leaves - 1  # heap index of the leaf bucket
        path = [bucket]
        while bucket > 0:
            bucket = (bucket - 1) // 2
            path.append(bucket)
        path.reverse()  # root first
        return path

    def bucket_at(self, leaf: int, level: int) -> int:
        """The bucket at ``level`` (0 = root) on ``leaf``'s path."""
        path = self.path_buckets(leaf)
        if not 0 <= level < len(path):
            raise ConfigurationError(f"level {level} out of range")
        return path[level]

    def paths_intersect_at(self, leaf_a: int, leaf_b: int, level: int) -> bool:
        """True when the two leaves share the same bucket at ``level``.

        This is the eviction compatibility test: a block assigned to
        ``leaf_b`` may be placed at ``level`` of ``leaf_a``'s path only when
        the buckets coincide.
        """
        return self.bucket_at(leaf_a, level) == self.bucket_at(leaf_b, level)


__all__ = ["TreeConfig"]
