"""PathORAM — the classic two-round tree ORAM (Stefanov et al.), used as the
baseline for the paper's §8 one-round sketch.

Per access the client:

1. looks up (and re-randomizes) the block's leaf in the position map,
2. **round 1** — fetches every bucket on the root→leaf path into the stash,
3. serves the read/write from the stash,
4. **round 2** — greedily re-packs path buckets from the stash (deepest
   level first, path-compatibility respected) and writes the path back.

Buckets are stored AEAD-encrypted under a fresh nonce on every write-back,
so the server sees only which path was touched — the standard ORAM leakage
profile, with the operation type hidden by the unconditional write-back.
"""

from __future__ import annotations

import random
import struct

from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, ProtocolError
from repro.obs import _state as _obs
from repro.obs.metrics import REGISTRY
from repro.oram.stash import Stash
from repro.oram.tree import TreeConfig
from repro.storage.kv import KeyValueStore
from repro.types import Operation

#: Slot id marking an empty (dummy) slot inside a bucket.
_DUMMY_ID = (1 << 64) - 1
_SLOT_HEADER = struct.Struct(">Q")


class PathOram:
    """A two-round tree ORAM over an untrusted key-value store.

    Args:
        num_blocks: Number of logical blocks (ids ``0 .. num_blocks-1``).
        value_len: Fixed block payload size in bytes.
        keychain: Key material (generated if omitted).
        tree: Tree geometry; defaults to :meth:`TreeConfig.for_blocks`.
        rng: Randomness for leaf assignment; seed it for deterministic tests.
    """

    #: Proxy↔server round trips per access.
    rounds_per_access = 2

    def __init__(
        self,
        num_blocks: int,
        value_len: int,
        keychain: KeyChain | None = None,
        tree: TreeConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if num_blocks < 1 or value_len < 1:
            raise ConfigurationError("num_blocks and value_len must be >= 1")
        self.num_blocks = num_blocks
        self.value_len = value_len
        self.tree = tree or TreeConfig.for_blocks(num_blocks)
        if self.tree.capacity < num_blocks:
            raise ConfigurationError("tree too small for the block count")
        self.keychain = keychain or KeyChain()
        self._rng = rng or random.Random()
        self.store: KeyValueStore[bytes] = KeyValueStore("path-oram-server")
        self.stash = Stash()
        self._position: dict[int, int] = {}
        self.rounds_used = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------ #
    # Bucket serialization
    # ------------------------------------------------------------------ #

    def _bucket_key(self, bucket: int) -> bytes:
        return self.keychain.encode_key(f"oram-bucket-{bucket}")

    def _seal_bucket(self, slots: list[tuple[int, bytes]]) -> bytes:
        if len(slots) > self.tree.bucket_size:
            raise ProtocolError("bucket overflow")
        padded = list(slots) + [(_DUMMY_ID, bytes(self.value_len))] * (
            self.tree.bucket_size - len(slots)
        )
        blob = b"".join(_SLOT_HEADER.pack(bid) + value for bid, value in padded)
        return aead.encrypt(self.keychain.data_key, blob)

    def _open_bucket(self, ciphertext: bytes) -> list[tuple[int, bytes]]:
        blob = aead.decrypt(self.keychain.data_key, ciphertext)
        slot_len = _SLOT_HEADER.size + self.value_len
        slots = []
        for offset in range(0, len(blob), slot_len):
            (block_id,) = _SLOT_HEADER.unpack_from(blob, offset)
            if block_id != _DUMMY_ID:
                value = blob[offset + _SLOT_HEADER.size: offset + slot_len]
                slots.append((block_id, value))
        return slots

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def initialize(self, values: dict[int, bytes] | None = None) -> None:
        """Create empty buckets and load initial block values via the stash.

        Blocks not named in ``values`` start as all-zero payloads.
        """
        for bucket in range(self.tree.num_buckets):
            self.store.put(self._bucket_key(bucket), self._seal_bucket([]))
        values = values or {}
        for block_id in range(self.num_blocks):
            self._position[block_id] = self._rng.randrange(self.tree.num_leaves)
            payload = values.get(block_id, bytes(self.value_len))
            if len(payload) != self.value_len:
                raise ConfigurationError(
                    f"block {block_id} payload must be {self.value_len} bytes"
                )
            self.stash.put(block_id, payload)
        # Drain the stash into the tree with eviction passes over random paths.
        for _ in range(2 * self.tree.num_leaves):
            if not len(self.stash):
                break
            leaf = self._rng.randrange(self.tree.num_leaves)
            self._read_path(leaf)
            self._evict_path(leaf)
        # Bulk-loading legitimately floods the stash; reset the high-water
        # mark (and the transfer counters) so they describe steady state.
        self.stash.max_occupancy = len(self.stash)
        self.rounds_used = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def access(self, op: Operation, block_id: int, new_value: bytes | None = None) -> bytes:
        """One oblivious access; returns the block's (pre-write) value."""
        if not 0 <= block_id < self.num_blocks:
            raise ConfigurationError(f"block id {block_id} out of range")
        if op.is_write:
            if new_value is None or len(new_value) != self.value_len:
                raise ConfigurationError("write needs a value of the configured size")
        leaf = self._position[block_id]
        self._position[block_id] = self._rng.randrange(self.tree.num_leaves)

        self._read_path(leaf)  # round 1
        value = self.stash.get(block_id)
        if op.is_write:
            assert new_value is not None
            self.stash.put(block_id, new_value)
        self._evict_path(leaf)  # round 2
        return value

    def read(self, block_id: int) -> bytes:
        """Oblivious GET of one block (two round trips)."""
        return self.access(Operation.READ, block_id)

    def write(self, block_id: int, value: bytes) -> None:
        """Oblivious PUT of one block (two round trips)."""
        self.access(Operation.WRITE, block_id, value)

    # ------------------------------------------------------------------ #
    # Path operations
    # ------------------------------------------------------------------ #

    def _read_path(self, leaf: int) -> None:
        self.rounds_used += 1
        path_bytes = 0
        for bucket in self.tree.path_buckets(leaf):
            ciphertext = self.store.get(self._bucket_key(bucket))
            path_bytes += len(ciphertext)
            for block_id, value in self._open_bucket(ciphertext):
                self.stash.put(block_id, value)
        self.bytes_transferred += path_bytes
        if _obs.enabled:
            REGISTRY.counter("oram.path.rounds").inc()
            REGISTRY.counter("oram.path.bytes_read").inc(path_bytes)
            REGISTRY.gauge("oram.path.stash_size").set(len(self.stash))

    def _evict_path(self, leaf: int) -> None:
        self.rounds_used += 1
        path = self.tree.path_buckets(leaf)
        evicted_blocks = 0
        path_bytes = 0
        # Deepest bucket first maximizes how far blocks sink.
        for level in range(len(path) - 1, -1, -1):
            chosen: list[tuple[int, bytes]] = []
            for block_id in self.stash.block_ids():
                if len(chosen) == self.tree.bucket_size:
                    break
                if self.tree.paths_intersect_at(leaf, self._position[block_id], level):
                    chosen.append((block_id, self.stash.get(block_id)))
            for block_id, _ in chosen:
                self.stash.pop(block_id)
            evicted_blocks += len(chosen)
            ciphertext = self._seal_bucket(chosen)
            path_bytes += len(ciphertext)
            self.store.put(self._bucket_key(path[level]), ciphertext)
        self.bytes_transferred += path_bytes
        if _obs.enabled:
            REGISTRY.counter("oram.path.rounds").inc()
            REGISTRY.counter("oram.path.bytes_written").inc(path_bytes)
            REGISTRY.counter("oram.path.blocks_evicted").inc(evicted_blocks)
            REGISTRY.gauge("oram.path.stash_size").set(len(self.stash))


__all__ = ["PathOram"]
