"""Oblivious data structures over the one-round ORAM.

Classic oblivious-data-structure constructions (Wang et al.) layer stacks
and queues over an ORAM's block interface: nodes live in ORAM blocks,
client-side pointers thread them together, and — crucially — every logical
operation performs a *fixed number* of ORAM accesses, so the server cannot
distinguish push from pop or enqueue from dequeue by counting.

Built on :class:`~repro.oram.one_round.OneRoundOram`, each access here is a
single round trip, so a stack operation costs exactly one WAN round and a
queue operation exactly two.

Uniformity rules enforced by this module:

* ``ObliviousStack``: push, pop, and peek are each exactly **1** access
  (pop/peek on an empty stack performs a dummy access before raising, so
  even failures look like any other operation).
* ``ObliviousQueue``: enqueue and dequeue are each exactly **2** accesses
  (enqueue writes the node and patches the old tail's next-pointer;
  dequeue reads the head and performs one dummy; empty dequeues do two
  dummies before raising).
"""

from __future__ import annotations

import random
import struct

from repro.errors import ConfigurationError, ProtocolError
from repro.oram.one_round import OneRoundOram
from repro.types import Operation

_PTR = struct.Struct(">q")  # signed: -1 is the null pointer
_NULL = -1


class _NodePool:
    """Fixed pool of ORAM blocks shared machinery for the structures."""

    def __init__(self, capacity: int, value_len: int, rng: random.Random | None) -> None:
        if capacity < 1 or value_len < 1:
            raise ConfigurationError("capacity and value_len must be >= 1")
        self.capacity = capacity
        self.value_len = value_len
        self.node_len = _PTR.size + value_len
        self.oram = OneRoundOram(capacity, self.node_len, rng=rng)
        self.oram.initialize({})
        self._free = list(range(capacity - 1, -1, -1))

    def allocate(self) -> int:
        if not self._free:
            raise ConfigurationError(f"structure is full ({self.capacity} nodes)")
        return self._free.pop()

    def release(self, block: int) -> None:
        self._free.append(block)

    def write_node(self, block: int, pointer: int, value: bytes) -> None:
        """One ORAM write: store (pointer, value) into a node block."""
        self.oram.write(block, _PTR.pack(pointer) + value)

    def read_node(self, block: int) -> tuple[int, bytes]:
        """One ORAM read: recover (pointer, value) from a node block."""
        raw = self.oram.read(block)
        (pointer,) = _PTR.unpack_from(raw, 0)
        return pointer, raw[_PTR.size:]

    def dummy_access(self) -> None:
        """One ORAM read of an arbitrary block; result discarded."""
        self.oram.access(Operation.READ, 0)

    @property
    def accesses(self) -> int:
        """Total ORAM accesses performed (the server-visible op count)."""
        return self.oram.rounds_used


class ObliviousStack:
    """A LIFO stack: every operation is exactly one oblivious access.

    Args:
        capacity: Maximum resident elements (pre-allocated ORAM blocks).
        value_len: Fixed element size in bytes.
        rng: Seed the underlying ORAM for deterministic tests.
    """

    def __init__(self, capacity: int, value_len: int,
                 rng: random.Random | None = None) -> None:
        self._pool = _NodePool(capacity, value_len, rng)
        self._top = _NULL
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def accesses(self) -> int:
        """Server-visible ORAM access count (uniform across op types)."""
        return self._pool.accesses

    def push(self, value: bytes) -> None:
        """Push an element (1 access)."""
        if len(value) != self._pool.value_len:
            raise ConfigurationError(
                f"value must be {self._pool.value_len} bytes, got {len(value)}"
            )
        block = self._pool.allocate()
        self._pool.write_node(block, self._top, value)
        self._top = block
        self._size += 1

    def pop(self) -> bytes:
        """Pop the top element (1 access; raises on empty after a dummy)."""
        if self._top == _NULL:
            self._pool.dummy_access()
            raise ProtocolError("pop from an empty oblivious stack")
        pointer, value = self._pool.read_node(self._top)
        self._pool.release(self._top)
        self._top = pointer
        self._size -= 1
        return value

    def peek(self) -> bytes:
        """Read the top element without removing it (1 access)."""
        if self._top == _NULL:
            self._pool.dummy_access()
            raise ProtocolError("peek at an empty oblivious stack")
        _pointer, value = self._pool.read_node(self._top)
        return value


class ObliviousQueue:
    """A FIFO queue: every operation is exactly two oblivious accesses."""

    def __init__(self, capacity: int, value_len: int,
                 rng: random.Random | None = None) -> None:
        self._pool = _NodePool(capacity, value_len, rng)
        self._head = _NULL
        self._tail = _NULL
        # The tail node's payload, cached client-side: this proxy wrote it
        # last, so patching the tail's next-pointer needs no ORAM read —
        # which is what keeps enqueue at exactly two accesses.
        self._tail_value = b""
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def accesses(self) -> int:
        """Server-visible ORAM access count (uniform across op types)."""
        return self._pool.accesses

    def enqueue(self, value: bytes) -> None:
        """Append an element (2 accesses: write node + patch old tail)."""
        if len(value) != self._pool.value_len:
            raise ConfigurationError(
                f"value must be {self._pool.value_len} bytes, got {len(value)}"
            )
        block = self._pool.allocate()
        self._pool.write_node(block, _NULL, value)
        if self._tail == _NULL:
            self._head = block
            self._pool.dummy_access()  # keep the 2-access profile
        else:
            self._pool.write_node(self._tail, block, self._tail_value)
        self._tail = block
        self._tail_value = value
        self._size += 1

    def dequeue(self) -> bytes:
        """Remove the oldest element (2 accesses; dummies when empty)."""
        if self._head == _NULL:
            self._pool.dummy_access()
            self._pool.dummy_access()
            raise ProtocolError("dequeue from an empty oblivious queue")
        pointer, value = self._pool.read_node(self._head)
        self._pool.release(self._head)
        self._head = pointer
        if self._head == _NULL:
            self._tail = _NULL
        self._pool.dummy_access()
        self._size -= 1
        return value


class ObliviousMap:
    """A bounded key→value map: every operation is exactly one access.

    The key→block assignment lives proxy-side (the same O(entries) trusted
    state the underlying ORAM's position map already needs); the server sees
    one uniform random path per operation regardless of whether it was a
    put, get, delete, or a miss.

    Args:
        capacity: Maximum resident entries.
        value_len: Fixed value size in bytes.
        rng: Seed the underlying ORAM for deterministic tests.
    """

    def __init__(self, capacity: int, value_len: int,
                 rng: random.Random | None = None) -> None:
        self._pool = _NodePool(capacity, value_len, rng)
        self._block_of: dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._block_of)

    def __contains__(self, key: bytes) -> bool:
        return key in self._block_of

    @property
    def accesses(self) -> int:
        """Server-visible ORAM access count (uniform across op types)."""
        return self._pool.accesses

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite an entry (1 access)."""
        if len(value) != self._pool.value_len:
            raise ConfigurationError(
                f"value must be {self._pool.value_len} bytes, got {len(value)}"
            )
        block = self._block_of.get(key)
        if block is None:
            block = self._pool.allocate()
            self._block_of[key] = block
        self._pool.write_node(block, _NULL, value)

    def get(self, key: bytes) -> bytes:
        """Fetch an entry (1 access; misses do a dummy before raising)."""
        block = self._block_of.get(key)
        if block is None:
            self._pool.dummy_access()
            raise ProtocolError(f"no entry for key {key!r}")
        _pointer, value = self._pool.read_node(block)
        return value

    def delete(self, key: bytes) -> None:
        """Remove an entry (1 access: overwrite with zeros, free the block)."""
        block = self._block_of.pop(key, None)
        if block is None:
            self._pool.dummy_access()
            raise ProtocolError(f"no entry for key {key!r}")
        self._pool.write_node(block, _NULL, bytes(self._pool.value_len))
        self._pool.release(block)


__all__ = ["ObliviousStack", "ObliviousQueue", "ObliviousMap"]
