"""Linear-scan ORAM: the privacy-maximal (and bandwidth-maximal) baseline.

The simplest scheme that hides *everything* — operation type, accessed
object, and access pattern — touches every object on every access: read all
N ciphertexts, rewrite all N (re-encrypting each, updating the target for
writes).  O(N) bandwidth per access makes it unusable beyond toy sizes,
which is the entire reason tree ORAMs (and ORTOA's single-round ambitions)
exist; having it in the repository anchors the cost spectrum:

==================  ============  =============  ====================
scheme              rounds        bandwidth      hides
==================  ============  =============  ====================
ORTOA               1             O(value)       operation type
PathORAM            2             O(log N)       + access pattern
one-round ORAM      1             O(log N)       + access pattern
linear scan         1             O(N)           + everything, trivially
==================  ============  =============  ====================
"""

from __future__ import annotations

import struct

from repro.crypto import aead
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError
from repro.storage.kv import KeyValueStore
from repro.types import Operation

_SLOT = struct.Struct(">Q")


class LinearScanOram:
    """Touch-everything ORAM over an AEAD-encrypted store."""

    rounds_per_access = 1

    def __init__(
        self,
        num_blocks: int,
        value_len: int,
        keychain: KeyChain | None = None,
    ) -> None:
        if num_blocks < 1 or value_len < 1:
            raise ConfigurationError("num_blocks and value_len must be >= 1")
        self.num_blocks = num_blocks
        self.value_len = value_len
        self.keychain = keychain or KeyChain()
        self.store: KeyValueStore[bytes] = KeyValueStore("linear-scan-server")
        self.rounds_used = 0
        self.bytes_transferred = 0

    def _slot_key(self, index: int) -> bytes:
        return self.keychain.encode_key(f"scan-slot-{index}")

    def initialize(self, values: dict[int, bytes] | None = None) -> None:
        """Create and encrypt every slot (zero payloads by default)."""
        values = values or {}
        for index in range(self.num_blocks):
            payload = values.get(index, bytes(self.value_len))
            if len(payload) != self.value_len:
                raise ConfigurationError(
                    f"block {index} payload must be {self.value_len} bytes"
                )
            ciphertext = aead.encrypt(
                self.keychain.data_key, _SLOT.pack(index) + payload
            )
            self.store.put(self._slot_key(index), ciphertext)

    def access(self, op: Operation, block_id: int, new_value: bytes | None = None) -> bytes:
        """One access = decrypt and re-encrypt the entire database."""
        if not 0 <= block_id < self.num_blocks:
            raise ConfigurationError(f"block id {block_id} out of range")
        if op.is_write and (new_value is None or len(new_value) != self.value_len):
            raise ConfigurationError("write needs a value of the configured size")
        self.rounds_used += 1
        result: bytes | None = None
        for index in range(self.num_blocks):
            key = self._slot_key(index)
            ciphertext = self.store.get(key)
            self.bytes_transferred += len(ciphertext)
            blob = aead.decrypt(self.keychain.data_key, ciphertext)
            (stored_id,) = _SLOT.unpack_from(blob, 0)
            payload = blob[_SLOT.size:]
            if stored_id == block_id:
                result = payload
                if op.is_write:
                    assert new_value is not None
                    payload = new_value
            fresh = aead.encrypt(self.keychain.data_key, _SLOT.pack(stored_id) + payload)
            self.bytes_transferred += len(fresh)
            self.store.put(key, fresh)
        assert result is not None, "initialized store always contains every block"
        return result

    def read(self, block_id: int) -> bytes:
        """Oblivious GET of one block."""
        return self.access(Operation.READ, block_id)

    def write(self, block_id: int, value: bytes) -> None:
        """Oblivious PUT of one block."""
        self.access(Operation.WRITE, block_id, value)


__all__ = ["LinearScanOram"]
