"""The client-side stash shared by the ORAM schemes.

A stash temporarily holds blocks that have been read off the tree (or could
not be evicted back yet).  Tree-ORAM analyses show it stays small with high
probability; :attr:`Stash.max_occupancy` tracks the high-water mark so
experiments can report it.
"""

from __future__ import annotations

from repro.errors import ProtocolError


class Stash:
    """Block-id → value holding area with occupancy tracking."""

    def __init__(self) -> None:
        self._blocks: dict[int, bytes] = {}
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def put(self, block_id: int, value: bytes) -> None:
        """Insert or update a block, tracking the high-water mark."""
        self._blocks[block_id] = value
        self.max_occupancy = max(self.max_occupancy, len(self._blocks))

    def get(self, block_id: int) -> bytes:
        """The stashed value of ``block_id``; raises if absent."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise ProtocolError(f"block {block_id} not in stash") from None

    def pop(self, block_id: int) -> bytes:
        """Remove and return the stashed value of ``block_id``."""
        value = self.get(block_id)
        del self._blocks[block_id]
        return value

    def block_ids(self) -> list[int]:
        """Snapshot of resident block ids (deterministic order)."""
        return sorted(self._blocks)


__all__ = ["Stash"]
