"""Plain-text rendering of experiment rows, paper-style.

Benchmarks call :func:`render_table` to print each reproduced table/figure
as an aligned text table, so ``pytest benchmarks/ --benchmark-only`` output
doubles as the EXPERIMENTS.md source data.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigurationError

Row = dict[str, Any]


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.6f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(title: str, rows: Iterable[Row]) -> str:
    """Render rows as an aligned text table with a title rule."""
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot render an empty table")
    columns = list(rows[0].keys())
    cells = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in cells
    )
    return f"{title}\n{rule}\n{header}\n{rule}\n{body}\n{rule}"


def rows_to_csv(rows: Iterable[Row]) -> str:
    """Render rows as CSV (for spreadsheet import of any experiment)."""
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot render an empty table")
    columns = list(rows[0].keys())

    def cell(value: Any) -> str:
        text = _format_value(value)
        if "," in text or '"' in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(cell(row.get(col, "")) for col in columns))
    return "\n".join(lines) + "\n"


def ratio_summary(rows: list[Row], group_key: str, value_key: str, base: str) -> dict[str, float]:
    """Per-group ratios against a named base group (e.g. vs 'baseline').

    Used by benchmarks to print headline factors like "LBL throughput is
    1.4x the 2RTT baseline".
    """
    values: dict[str, list[float]] = {}
    for row in rows:
        values.setdefault(str(row[group_key]), []).append(float(row[value_key]))
    if base not in values:
        raise ConfigurationError(f"base group {base!r} not present")
    averages = {group: sum(v) / len(v) for group, v in values.items()}
    base_value = averages[base]
    if base_value == 0:
        raise ConfigurationError("base group average is zero")
    return {group: avg / base_value for group, avg in averages.items()}


__all__ = ["render_table", "rows_to_csv", "ratio_summary"]
