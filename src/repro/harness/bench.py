"""Benchmark trajectory recording and the regression-vs-best gate.

Every gate in ``benchmarks/test_*`` measures something (a speedup ratio,
an overhead fraction) and asserts a floor — but a floor says nothing about
*drift*: a kernel that slid from 5.5x to 3.1x still passes a 3x gate.
:class:`BenchRecorder` keeps the trajectory: each run appends
``(run id, metric, value)`` rows to ``BENCH_history.json`` at the repo
root, and :func:`check_history` fails when the latest run regressed more
than a threshold against the best previous recording of the same metric.

Only *self-relative* metrics (ratios, fractions) should be gated
(``gate=True``): they compare across machines, so a laptop-recorded best
is a fair bar for a CI runner.  Raw ops/sec rows ride along ungated as the
trajectory record.  ``python -m repro bench check`` runs the gate in CI;
with no prior runs to compare it warns instead of failing, so an empty
trajectory bootstraps itself.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import uuid
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

#: Default trajectory file, next to BENCH_kernels.json at the repo root.
DEFAULT_HISTORY = pathlib.Path(__file__).resolve().parents[3] / "BENCH_history.json"

#: Default allowed regression of a gated metric vs the recorded best.
DEFAULT_THRESHOLD = 0.20


def _default_run_id() -> str:
    """CI run id when available, else a timestamped unique id."""
    ci_run = os.environ.get("GITHUB_RUN_ID")
    if ci_run:
        return f"ci-{ci_run}"
    return time.strftime("%Y%m%dT%H%M%S") + "-" + uuid.uuid4().hex[:6]


class BenchRecorder:
    """Appends one run's benchmark metrics to the trajectory file.

    Args:
        path: Trajectory file (created on first record).
        run_id: Identity shared by every metric of one run; defaults to
            the CI run id or a fresh timestamp.
    """

    def __init__(
        self,
        path: pathlib.Path | str = DEFAULT_HISTORY,
        run_id: str | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.run_id = run_id or _default_run_id()

    def record(
        self,
        metric: str,
        value: float,
        *,
        unit: str | None = None,
        higher_is_better: bool = True,
        gate: bool = True,
    ) -> dict[str, Any]:
        """Append one measurement; returns the stored entry.

        ``gate=False`` records the value for the trajectory without it
        participating in :func:`check_history` — use it for raw ops/sec
        and anything else that does not compare across machines.
        """
        entry = {
            "run_id": self.run_id,
            "metric": metric,
            "value": float(value),
            "unit": unit,
            "higher_is_better": bool(higher_is_better),
            "gate": bool(gate),
        }
        history = load_history(self.path)
        history["entries"].append(entry)
        self.path.write_text(
            json.dumps(history, indent=2) + "\n", encoding="utf-8"
        )
        return entry


def load_history(path: pathlib.Path | str = DEFAULT_HISTORY) -> dict[str, Any]:
    """The trajectory file's contents (``{"entries": []}`` when absent)."""
    path = pathlib.Path(path)
    if not path.exists():
        return {"entries": []}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ConfigurationError(f"{path} is not a BENCH history file")
    return data


def best_value(
    entries: list[dict[str, Any]], metric: str, *, exclude_run: str | None = None
) -> float | None:
    """The best prior recording of ``metric`` (None if never recorded)."""
    values = [
        e["value"]
        for e in entries
        if e["metric"] == metric and e["run_id"] != exclude_run
    ]
    if not values:
        return None
    higher = all(
        e.get("higher_is_better", True) for e in entries if e["metric"] == metric
    )
    return max(values) if higher else min(values)


@dataclass
class GateResult:
    """Verdict of one gated metric in the latest run."""

    metric: str
    value: float
    best: float | None
    regressed: bool
    message: str


def check_history(
    path: pathlib.Path | str = DEFAULT_HISTORY,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[GateResult]:
    """Compare the latest run's gated metrics against the best prior runs.

    Returns one :class:`GateResult` per gated metric of the latest run.
    A metric with no prior recording yields ``regressed=False`` with a
    bootstrap message (warn-only first run); the caller decides the exit
    code from the ``regressed`` flags.
    """
    entries = load_history(path)["entries"]
    if not entries:
        return []
    latest_run = entries[-1]["run_id"]
    results = []
    for entry in entries:
        if entry["run_id"] != latest_run or not entry.get("gate", True):
            continue
        metric, value = entry["metric"], entry["value"]
        best = best_value(entries, metric, exclude_run=latest_run)
        if best is None:
            results.append(
                GateResult(
                    metric, value, None, False,
                    f"{metric}: {value:g} (first recording, nothing to compare)",
                )
            )
            continue
        if entry.get("higher_is_better", True):
            regressed = value < best * (1.0 - threshold)
            direction = "below"
        else:
            regressed = value > best * (1.0 + threshold)
            direction = "above"
        verdict = "REGRESSED" if regressed else "ok"
        results.append(
            GateResult(
                metric, value, best, regressed,
                f"{metric}: {value:g} vs best {best:g} "
                f"({verdict}; fails when >{threshold:.0%} {direction} best)",
            )
        )
    return results


__all__ = [
    "BenchRecorder",
    "GateResult",
    "load_history",
    "best_value",
    "check_history",
    "DEFAULT_HISTORY",
    "DEFAULT_THRESHOLD",
]
