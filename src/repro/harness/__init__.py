"""Experiment harness: cost calibration, the DES runner, per-figure configs.

The pipeline for every performance figure:

1. **Profile** — execute a handful of *real* accesses per protocol to capture
   byte-exact message sizes and cryptographic op counts
   (:mod:`repro.harness.runner` does this internally).
2. **Price** — convert op counts to compute time via a
   :class:`~repro.harness.calibration.CostModel` (either the paper-calibrated
   defaults or one measured from this library's own primitives).
3. **Simulate** — replay closed-loop clients against the profiled protocol on
   the discrete-event WAN simulator and aggregate latency/throughput.
4. **Report** — :mod:`repro.harness.experiments` exposes one function per
   table/figure; :mod:`repro.harness.report` renders them like the paper.
"""

from repro.harness.calibration import CostModel
from repro.harness.runner import DeploymentSpec, RunResult, run_experiment

__all__ = ["CostModel", "DeploymentSpec", "RunResult", "run_experiment"]
