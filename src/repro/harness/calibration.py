"""Cost models: pricing cryptographic op counts into compute time.

The paper's testbed ran C++ crypto on AWS r5.xlarge / Azure DC48s_v3; this
reproduction runs the protocols functionally in Python and *prices* their op
counts into simulated time.  Two calibrations are provided:

* :meth:`CostModel.paper_like` — constants chosen so the derived phase times
  match the paper's reported compute costs (LBL label processing ≈ 2–3 ms
  for 160 B values, §6.3.1/§6.3.3; enclave call overhead in the tens of
  microseconds).  This is the default for figure reproduction.
* :meth:`CostModel.measured` — times this library's own (pure-Python)
  primitives through the :mod:`repro.obs.clock` abstraction (wall clock by
  default, a fake clock under test), for machine-true what-if runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.base import OpCounts
from repro.crypto import aead
from repro.crypto.prf import Prf
from repro.errors import ConfigurationError
from repro.obs.clock import Clock, WallClock


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-operation compute costs in microseconds (FHE ops in ms)."""

    prf_us: float = 0.25
    aead_enc_us: float = 0.30
    aead_dec_us: float = 0.25
    failed_dec_us: float = 0.25
    ecall_overhead_us: float = 40.0
    kv_op_us: float = 2.0
    fhe_enc_ms: float = 2.0
    fhe_dec_ms: float = 1.0
    fhe_add_ms: float = 0.2
    fhe_mul_ms: float = 30.0

    def phase_ms(self, ops: OpCounts) -> float:
        """Compute time of one phase given its op counts."""
        micro = (
            ops.prf * self.prf_us
            + ops.aead_enc * self.aead_enc_us
            + ops.aead_dec * self.aead_dec_us
            + ops.failed_dec * self.failed_dec_us
            + ops.ecalls * self.ecall_overhead_us
            + ops.kv_ops * self.kv_op_us
        )
        milli = (
            ops.fhe_enc * self.fhe_enc_ms
            + ops.fhe_dec * self.fhe_dec_ms
            + ops.fhe_add * self.fhe_add_ms
            + ops.fhe_mul * self.fhe_mul_ms
        )
        return micro / 1000.0 + milli

    @classmethod
    def paper_like(cls) -> "CostModel":
        """The default calibration (see module docstring)."""
        return cls()

    @classmethod
    def measured(
        cls,
        label_bytes: int = 16,
        samples: int = 2000,
        clock: Clock | None = None,
    ) -> "CostModel":
        """Calibrate symmetric-crypto costs by timing this library.

        FHE and ecall costs keep their paper-like defaults (the FHE scheme
        here is educational-grade and the enclave is simulated, so timing
        them would not model any real deployment).

        Args:
            label_bytes: Payload size the primitives are timed at.
            samples: Timed iterations per primitive.
            clock: Time source (defaults to a fresh
                :class:`~repro.obs.clock.WallClock`); tests inject a
                :class:`~repro.obs.clock.FakeClock` for deterministic
                calibration.
        """
        if samples < 10:
            raise ConfigurationError("need at least 10 samples to calibrate")
        clock = clock or WallClock()
        prf = Prf(b"calibration-key-0123456789abcdef", out_bytes=label_bytes)
        key = b"k" * 16
        payload = b"p" * label_bytes
        ciphertext = aead.encrypt(key, payload)
        wrong_key = b"w" * 16

        def time_us(fn) -> float:
            start = clock.now()
            for i in range(samples):
                fn(i)
            return (clock.now() - start) / samples * 1e6

        prf_us = time_us(lambda i: prf.evaluate("calib", i))
        enc_us = time_us(lambda i: aead.encrypt(key, payload))
        dec_us = time_us(lambda i: aead.decrypt(key, ciphertext))
        failed_us = time_us(lambda i: aead.try_decrypt(wrong_key, ciphertext))
        return replace(
            cls(),
            prf_us=prf_us,
            aead_enc_us=enc_us,
            aead_dec_us=dec_us,
            failed_dec_us=failed_us,
        )


__all__ = ["CostModel"]
