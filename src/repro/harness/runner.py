"""The discrete-event experiment runner.

Reproduces the paper's measurement methodology (§6, "Experimental Setup") on
the simulated testbed:

* a multi-threaded closed-loop client — ``num_clients`` concurrent request
  streams, each waiting for its response before issuing the next request;
* clients and proxy co-located (sub-millisecond link), the storage server at
  a Table 2 datacenter distance;
* per-request latency measured client-to-client, throughput as completed
  operations per simulated second.

Each protocol is first exercised *functionally* on a small store to capture
real transcripts (byte-exact message sizes, true op counts); the simulation
then replays those profiles at scale.  Database size ``num_objects`` enters
through an explicit memory-pressure model (see :class:`DeploymentSpec`)
because message shapes do not depend on N — only server-side memory
behaviour does (§6.2.3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.analysis.metrics import RunMetrics, summarize
from repro.core import FheOrtoa, LblOrtoa, OrtoaProtocol, TeeOrtoa, TwoRoundBaseline
from repro.core.base import AccessTranscript
from repro.errors import ConfigurationError
from repro.harness.calibration import CostModel
from repro.obs import _state as _obs
from repro.obs.clock import SimClock, use_clock
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.sim.core import Environment
from repro.sim.network import CLIENT_PROXY_RTT_MS, DEFAULT_BANDWIDTH_MBPS, NetworkLink
from repro.sim.resources import Resource
from repro.types import LatencySample, Operation, Request, StoreConfig
from repro.workloads.synthetic import RequestStream, WorkloadSpec

#: Keys used for transcript profiling; shapes don't depend on the key.
_PROFILE_KEYS = 4
#: Real accesses averaged per op type when profiling (the shuffled LBL
#: variant has stochastic failed-decryption counts).
_PROFILE_SAMPLES = 3

PROTOCOL_NAMES = ("baseline", "tee", "lbl", "lbl-base", "fhe")


@dataclass(frozen=True, slots=True)
class DeploymentSpec:
    """Everything that defines one experiment run.

    Attributes:
        protocol: One of ``baseline`` (2RTT), ``tee``, ``lbl`` (the §10
            optimized protocol: y=2 + point-and-permute, the configuration
            the paper prices in §6.3.3), ``lbl-base`` (the plain §5.2
            protocol), or ``fhe``.
        server_location: Table 2 datacenter name for the proxy→server link.
        num_clients: Closed-loop client threads (paper default 32).
        server_cores: 4 for the AWS r5.xlarge servers, 48 for the Azure SGX
            machines (§6, Experimental Setup).
        proxy_workers: Parallelism of the proxy's crypto work (r5.xlarge: 4).
        num_objects: Database size N; enters via the memory-pressure model.
        memory_pressure_ms_per_100kb: Extra server time per 100 kB of
            per-request message volume, per doubling of N beyond 2^20 —
            models the §6.2.3 observation that a single server holding more
            objects in memory has fewer resources for request processing.
            LBL's ~125 kB requests feel this; TEE's ~0.3 kB do not.
        tee_paging_ms_per_excess_client: Models the §6.2.1 enclave paging /
            context-switch latency once concurrency exceeds the SGX
            machine's cores.
        num_shards: §6.2.4 — simulate s independent proxy/server pairs with
            ``num_clients`` clients each.
    """

    protocol: str = "lbl"
    value_len: int = 160
    server_location: str = "oregon"
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS
    num_clients: int = 32
    server_cores: int = 4
    proxy_workers: int = 4
    num_objects: int = 2**20
    write_fraction: float = 0.5
    duration_ms: float = 2_000.0
    num_shards: int = 1
    seed: int = 0
    memory_pressure_ms_per_100kb: float = 1.25
    tee_paging_ms_per_excess_client: float = 0.35
    label_bits: int = 128
    #: Per-message one-way latency jitter, uniform in [0, rtt_jitter_ms].
    #: The paper averages three AWS runs to smooth exactly this kind of
    #: variance; 0 (default) gives deterministic runs.
    rtt_jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOL_NAMES}"
            )
        if self.num_clients < 1 or self.num_shards < 1:
            raise ConfigurationError("num_clients and num_shards must be >= 1")
        if self.duration_ms <= 0:
            raise ConfigurationError("duration_ms must be positive")
        if self.rtt_jitter_ms < 0:
            raise ConfigurationError("rtt_jitter_ms must be non-negative")

    def store_config(self) -> StoreConfig:
        """The StoreConfig this spec's protocol runs with."""
        if self.protocol == "lbl":
            return StoreConfig(
                value_len=self.value_len,
                label_bits=self.label_bits,
                group_bits=2,
                point_and_permute=True,
            )
        return StoreConfig(value_len=self.value_len, label_bits=self.label_bits)

    def build_protocol(self) -> OrtoaProtocol:
        """A fresh functional protocol instance for profiling."""
        config = self.store_config()
        if self.protocol == "baseline":
            return TwoRoundBaseline(config)
        if self.protocol == "tee":
            return TeeOrtoa(config)
        if self.protocol in ("lbl", "lbl-base"):
            return LblOrtoa(config, rng=random.Random(self.seed))
        return FheOrtoa(config)


@dataclass(frozen=True, slots=True)
class _PhaseProfile:
    location: str
    compute_ms: float


@dataclass(frozen=True, slots=True)
class _RequestProfile:
    """Averaged transcript profile for one operation type."""

    phases: tuple[_PhaseProfile, ...]
    round_trips: tuple[tuple[float, float], ...]  # (request_bytes, response_bytes)

    @property
    def total_bytes(self) -> float:
        return sum(a + b for a, b in self.round_trips)


@dataclass(slots=True)
class RunResult:
    """Output of :func:`run_experiment`."""

    spec: DeploymentSpec
    metrics: RunMetrics
    request_bytes: float
    response_bytes: float
    avg_proxy_compute_ms: float
    avg_server_compute_ms: float
    #: Mean fraction of proxy-worker time spent computing (averaged over
    #: shards).  ≈1.0 means the proxy is the bottleneck — the saturation
    #: mechanism behind the Figure 2b knee and the Figure 3b crossover.
    proxy_utilization: float = 0.0
    #: Mean fraction of server-core time spent computing.
    server_utilization: float = 0.0


def _profile_protocol(
    spec: DeploymentSpec, cost_model: CostModel
) -> dict[Operation, _RequestProfile]:
    """Execute real accesses and average them into per-op-type profiles."""
    protocol = spec.build_protocol()
    records = {f"profile-{i}": bytes(spec.value_len) for i in range(_PROFILE_KEYS)}
    protocol.initialize(records)
    profiles: dict[Operation, _RequestProfile] = {}
    for op in (Operation.READ, Operation.WRITE):
        transcripts: list[AccessTranscript] = []
        for i in range(_PROFILE_SAMPLES):
            key = f"profile-{i % _PROFILE_KEYS}"
            if op is Operation.READ:
                transcripts.append(protocol.access(Request.read(key)))
            else:
                transcripts.append(
                    protocol.access(Request.write(key, bytes(spec.value_len)))
                )
        first = transcripts[0]
        phases = tuple(
            _PhaseProfile(
                phase.location,
                sum(
                    cost_model.phase_ms(t.phases[idx].ops) for t in transcripts
                )
                / len(transcripts),
            )
            for idx, phase in enumerate(first.phases)
        )
        round_trips = tuple(
            (
                sum(t.round_trips[i].request_bytes for t in transcripts) / len(transcripts),
                sum(t.round_trips[i].response_bytes for t in transcripts) / len(transcripts),
            )
            for i in range(first.num_rounds)
        )
        profiles[op] = _RequestProfile(phases, round_trips)
    return profiles


def _memory_pressure_ms(spec: DeploymentSpec, profile: _RequestProfile) -> float:
    """Extra server time from holding N objects in memory (§6.2.3 model)."""
    objects_per_shard = spec.num_objects / spec.num_shards
    doublings = max(0.0, math.log2(objects_per_shard / 2**20)) if objects_per_shard > 0 else 0.0
    if doublings == 0.0:
        return 0.0
    per_100kb = profile.total_bytes / 100_000.0
    return spec.memory_pressure_ms_per_100kb * per_100kb * doublings


def _tee_paging_ms(spec: DeploymentSpec) -> float:
    """Enclave paging penalty once concurrency exceeds the cores (§6.2.1)."""
    if spec.protocol != "tee":
        return 0.0
    excess = max(0, spec.num_clients - spec.server_cores)
    return spec.tee_paging_ms_per_excess_client * excess


def run_experiment(
    spec: DeploymentSpec, cost_model: CostModel | None = None
) -> RunResult:
    """Simulate one deployment and aggregate its metrics.

    Runs ``spec.num_shards`` independent proxy/server pairs, each loaded by
    ``spec.num_clients`` closed-loop clients (the paper's scaling experiment
    grows clients with shards).  Returns combined throughput and the latency
    distribution over all completed requests.
    """
    cost_model = cost_model or CostModel.paper_like()
    profiles = _profile_protocol(spec, cost_model)
    link = NetworkLink.to_datacenter(spec.server_location, spec.bandwidth_mbps)

    env = Environment()
    samples: list[LatencySample] = []
    pressure_ms = {
        op: _memory_pressure_ms(spec, profile) for op, profile in profiles.items()
    }
    paging_ms = _tee_paging_ms(spec)

    proxies: list[Resource] = []
    servers: list[Resource] = []
    for shard in range(spec.num_shards):
        proxy = Resource(env, spec.proxy_workers)
        server = Resource(env, spec.server_cores)
        proxies.append(proxy)
        servers.append(server)
        for client in range(spec.num_clients):
            stream = RequestStream(
                WorkloadSpec(
                    keys=tuple(f"profile-{i}" for i in range(_PROFILE_KEYS)),
                    value_len=spec.value_len,
                    write_fraction=spec.write_fraction,
                    seed=spec.seed * 100_003 + shard * 1_009 + client,
                )
            )
            env.process(
                _client_process(
                    env,
                    spec,
                    stream,
                    profiles,
                    link,
                    proxy,
                    server,
                    pressure_ms,
                    paging_ms,
                    samples,
                )
            )
    # Spans recorded inside the simulation carry simulated-millisecond
    # timestamps, making captured runs fully deterministic.
    with use_clock(SimClock(env)):
        env.run(until=spec.duration_ms)

    if not samples:
        raise ConfigurationError(
            "no requests completed: duration too short for the configured RTT"
        )
    metrics = summarize(samples, spec.duration_ms)
    read_profile = profiles[Operation.READ]
    return RunResult(
        spec=spec,
        metrics=metrics,
        request_bytes=sum(rt[0] for rt in read_profile.round_trips),
        response_bytes=sum(rt[1] for rt in read_profile.round_trips),
        avg_proxy_compute_ms=sum(
            p.compute_ms for p in read_profile.phases if p.location == "proxy"
        ),
        avg_server_compute_ms=sum(
            p.compute_ms for p in read_profile.phases if p.location == "server"
        ),
        proxy_utilization=sum(p.utilization(spec.duration_ms) for p in proxies)
        / len(proxies),
        server_utilization=sum(s.utilization(spec.duration_ms) for s in servers)
        / len(servers),
    )


def _client_process(
    env: Environment,
    spec: DeploymentSpec,
    stream: RequestStream,
    profiles: dict[Operation, _RequestProfile],
    link: NetworkLink,
    proxy: Resource,
    server: Resource,
    pressure_ms: dict[Operation, float],
    paging_ms: float,
    samples: list[LatencySample],
):
    """One closed-loop client thread (§6: sequential requests per thread)."""
    # Seeded from the (unique, deterministic) per-client stream seed so runs
    # with jitter enabled are still reproducible.
    jitter_rng = random.Random(stream.spec.seed * 7919 + 13)

    def jitter() -> float:
        if spec.rtt_jitter_ms == 0.0:
            return 0.0
        return jitter_rng.uniform(0.0, spec.rtt_jitter_ms)

    while env.now < spec.duration_ms:
        request_op = stream.next_request().op
        profile = profiles[request_op]
        start = env.now
        compute_total = 0.0
        overhead_total = 0.0
        # Manual span API: client generators interleave arbitrarily, so a
        # context-managed (contextvar-nested) span would mis-parent siblings.
        span = (
            TRACER.start_span(
                "harness.request", root=True, op=request_op.value,
                protocol=spec.protocol,
            )
            if _obs.enabled
            else None
        )

        # Client → proxy hop (co-located datacenter).
        yield env.timeout(CLIENT_PROXY_RTT_MS / 2)

        round_index = 0
        for phase in profile.phases:
            if phase.location == "proxy":
                compute_total += phase.compute_ms
                yield from proxy.use(env, phase.compute_ms)
            else:
                request_bytes, response_bytes = profile.round_trips[round_index]
                round_index += 1
                yield env.timeout(link.one_way_ms(int(request_bytes)) + jitter())
                server_ms = phase.compute_ms + pressure_ms[request_op] + paging_ms
                compute_total += server_ms
                yield from server.use(env, server_ms)
                yield env.timeout(link.one_way_ms(int(response_bytes)) + jitter())
                overhead_total += link.overhead_ms(int(request_bytes), int(response_bytes))

        # Proxy → client hop.
        yield env.timeout(CLIENT_PROXY_RTT_MS / 2)

        if span is not None:
            request_bytes = sum(rt[0] for rt in profile.round_trips)
            response_bytes = sum(rt[1] for rt in profile.round_trips)
            span.set_attributes(
                compute_ms=compute_total,
                comm_overhead_ms=overhead_total,
                request_bytes=request_bytes,
                response_bytes=response_bytes,
            )
            TRACER.end(span)
            REGISTRY.counter("harness.requests").inc()
            REGISTRY.counter("harness.wire.request_bytes").inc(int(request_bytes))
            REGISTRY.counter("harness.wire.response_bytes").inc(int(response_bytes))
        if env.now <= spec.duration_ms:
            samples.append(
                LatencySample(
                    op=request_op,
                    start_ms=start,
                    end_ms=env.now,
                    compute_ms=compute_total,
                    comm_overhead_ms=overhead_total,
                    trace_id=span.trace_id if span is not None else None,
                )
            )


__all__ = ["DeploymentSpec", "RunResult", "run_experiment", "PROTOCOL_NAMES"]
