"""Replicated experiment runs — the paper's "average of 3 runs" methodology.

§6 notes that "each data point plotted in all the experiments is an average
of 3 runs to account for performance variability caused by AWS and Azure".
:func:`run_replicated` reproduces the procedure: the same deployment spec
executed under several seeds (optionally with network jitter enabled, which
is where simulated variability comes from), reduced to mean and standard
deviation per metric.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.harness.calibration import CostModel
from repro.harness.runner import DeploymentSpec, RunResult, run_experiment


@dataclass(frozen=True, slots=True)
class ReplicatedResult:
    """Mean/stddev of the headline metrics over replicated runs."""

    spec: DeploymentSpec
    runs: tuple[RunResult, ...]
    throughput_mean: float
    throughput_stdev: float
    latency_mean_ms: float
    latency_stdev_ms: float

    @property
    def num_runs(self) -> int:
        """How many replicas contributed."""
        return len(self.runs)


def run_replicated(
    spec: DeploymentSpec,
    num_runs: int = 3,
    cost_model: CostModel | None = None,
) -> ReplicatedResult:
    """Run ``spec`` under ``num_runs`` distinct seeds and aggregate.

    Each replica gets seed ``spec.seed + i`` (distinct client workload
    interleavings, and distinct jitter draws when ``rtt_jitter_ms > 0``).
    """
    if num_runs < 1:
        raise ConfigurationError("num_runs must be >= 1")
    runs = tuple(
        run_experiment(replace(spec, seed=spec.seed + i), cost_model)
        for i in range(num_runs)
    )
    throughputs = [r.metrics.throughput_ops_per_s for r in runs]
    latencies = [r.metrics.avg_latency_ms for r in runs]
    return ReplicatedResult(
        spec=spec,
        runs=runs,
        throughput_mean=statistics.fmean(throughputs),
        throughput_stdev=statistics.stdev(throughputs) if num_runs > 1 else 0.0,
        latency_mean_ms=statistics.fmean(latencies),
        latency_stdev_ms=statistics.stdev(latencies) if num_runs > 1 else 0.0,
    )


__all__ = ["ReplicatedResult", "run_replicated"]
