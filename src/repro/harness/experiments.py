"""One function per paper table/figure — the reproduction index.

Each function runs the relevant parameter sweep on the simulated testbed and
returns a list of row dicts; :mod:`repro.harness.report` renders them.  The
mapping to the paper:

==============  =====================================================
``table2``      Table 2 — cross-datacenter RTTs (configuration echo)
``figure2a``    Fig 2a — latency/throughput vs proxy→server distance
``figure2b``    Fig 2b — concurrency sweep
``figure2c``    Fig 2c — write-percentage sweep
``figure2d``    Fig 2d — database-size sweep
``figure3a``    Fig 3a — scaling proxy/server pairs 1→5
``figure3b``    Fig 3b — value-size sweep vs the 2RTT baseline
``figure3c``    Fig 3c — LBL latency breakdown (compute / RTT / overhead)
``figure3d``    Fig 3d — GDPR placement: 300 B objects, server in the EU
``figure4``     Fig 4 — real-world datasets (EHR / SmallBank / e-commerce)
``figure6``     Fig 6 — storage vs communication overhead factors vs y
``fhe_noise``   §3.3 — FHE noise exhaustion curve
``dollar_cost`` §6.3.3 — LBL operating cost estimate
==============  =====================================================

Beyond the paper's artifacts, :func:`sharded_scaling` and
:func:`pipeline_depth_sweep` measure the real-socket sharded deployment
(§6.2.4 realized over TCP rather than the simulated testbed).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.analysis.cost import estimate_lbl_cost
from repro.analysis.overhead import overhead_factors
from repro.crypto.fhe import FheParams, FheScheme
from repro.harness.calibration import CostModel
from repro.harness.runner import DeploymentSpec, run_experiment
from repro.sim.network import DATACENTER_RTT_MS
from repro.workloads.datasets import DATASETS

Row = dict[str, Any]

#: Default simulated duration per data point; long enough for thousands of
#: requests at every datacenter distance.
_DURATION_MS = 3_000.0

#: Server cores per protocol: AWS r5.xlarge (4) for baseline/LBL, the Azure
#: Standard_DC48s_v3 SGX machines (48) for TEE (§6, Experimental Setup).
_CORES = {"baseline": 4, "lbl": 4, "lbl-base": 4, "tee": 48, "fhe": 4}


def _run(spec: DeploymentSpec, cost_model: CostModel | None = None):
    return run_experiment(spec, cost_model)


def _spec(protocol: str, **overrides: Any) -> DeploymentSpec:
    base = DeploymentSpec(
        protocol=protocol,
        server_cores=_CORES[protocol],
        duration_ms=_DURATION_MS,
    )
    return replace(base, **overrides)


def table2() -> list[Row]:
    """Table 2: RTT latencies from California, in ms (configuration echo)."""
    return [
        {"location": name, "rtt_ms": rtt} for name, rtt in DATACENTER_RTT_MS.items()
    ]


def figure2a(protocols: tuple[str, ...] = ("lbl", "tee", "baseline")) -> list[Row]:
    """Fig 2a: 32 clients, 160 B values, server at increasing distances."""
    rows = []
    for location in DATACENTER_RTT_MS:
        for protocol in protocols:
            result = _run(_spec(protocol, server_location=location))
            rows.append(
                {
                    "location": location,
                    "protocol": protocol,
                    "throughput_ops_s": result.metrics.throughput_ops_per_s,
                    "avg_latency_ms": result.metrics.avg_latency_ms,
                }
            )
    return rows


def figure2b(
    client_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    protocols: tuple[str, ...] = ("lbl", "tee"),
) -> list[Row]:
    """Fig 2b: concurrency sweep at Oregon distance."""
    rows = []
    for protocol in protocols:
        for clients in client_counts:
            result = _run(_spec(protocol, num_clients=clients))
            rows.append(
                {
                    "protocol": protocol,
                    "clients": clients,
                    "throughput_ops_s": result.metrics.throughput_ops_per_s,
                    "avg_latency_ms": result.metrics.avg_latency_ms,
                }
            )
    return rows


def figure2c(
    write_percents: tuple[int, ...] = (0, 25, 50, 75, 100),
    protocols: tuple[str, ...] = ("lbl", "tee"),
) -> list[Row]:
    """Fig 2c: 0% → 100% writes; ORTOA's numbers must stay flat."""
    rows = []
    for protocol in protocols:
        for percent in write_percents:
            result = _run(_spec(protocol, write_fraction=percent / 100.0))
            rows.append(
                {
                    "protocol": protocol,
                    "write_percent": percent,
                    "throughput_ops_s": result.metrics.throughput_ops_per_s,
                    "avg_latency_ms": result.metrics.avg_latency_ms,
                }
            )
    return rows


def figure2d(
    log2_sizes: tuple[int, ...] = (10, 12, 14, 16, 18, 20, 21, 22),
    protocols: tuple[str, ...] = ("lbl", "tee"),
) -> list[Row]:
    """Fig 2d: database size 2^10 → 2^22 objects."""
    rows = []
    for protocol in protocols:
        for log2_n in log2_sizes:
            result = _run(_spec(protocol, num_objects=2**log2_n))
            rows.append(
                {
                    "protocol": protocol,
                    "log2_objects": log2_n,
                    "throughput_ops_s": result.metrics.throughput_ops_per_s,
                    "avg_latency_ms": result.metrics.avg_latency_ms,
                }
            )
    return rows


def figure3a(
    shard_counts: tuple[int, ...] = (1, 2, 3, 4, 5),
    protocols: tuple[str, ...] = ("lbl", "tee"),
) -> list[Row]:
    """Fig 3a: scale proxy/server pairs 1→5, clients growing as 32·s."""
    rows = []
    for protocol in protocols:
        for shards in shard_counts:
            result = _run(
                _spec(protocol, num_shards=shards, num_objects=shards * 2**20)
            )
            rows.append(
                {
                    "protocol": protocol,
                    "shards": shards,
                    "clients": 32 * shards,
                    "throughput_ops_s": result.metrics.throughput_ops_per_s,
                    "avg_latency_ms": result.metrics.avg_latency_ms,
                }
            )
    return rows


def figure3b(
    value_sizes: tuple[int, ...] = (10, 50, 160, 300, 450, 600),
    protocols: tuple[str, ...] = ("lbl", "tee", "baseline"),
) -> list[Row]:
    """Fig 3b: the value-size sweep that finds the LBL/baseline crossover."""
    rows = []
    for protocol in protocols:
        for value_len in value_sizes:
            result = _run(_spec(protocol, value_len=value_len))
            rows.append(
                {
                    "protocol": protocol,
                    "value_bytes": value_len,
                    "throughput_ops_s": result.metrics.throughput_ops_per_s,
                    "avg_latency_ms": result.metrics.avg_latency_ms,
                }
            )
    return rows


def figure3c(
    value_sizes: tuple[int, ...] = (10, 50, 160, 300, 450, 600),
) -> list[Row]:
    """Fig 3c: LBL latency broken into compute / base RTT / comm overhead,
    with the baseline's total latency for contrast."""
    rows = []
    for value_len in value_sizes:
        lbl = _run(_spec("lbl", value_len=value_len))
        baseline = _run(_spec("baseline", value_len=value_len))
        metrics = lbl.metrics
        rows.append(
            {
                "value_bytes": value_len,
                "compute_ms": metrics.avg_compute_ms,
                "base_comm_ms": metrics.avg_base_comm_ms,
                "comm_overhead_ms": metrics.avg_comm_overhead_ms,
                "total_ms": metrics.avg_latency_ms,
                "baseline_total_ms": baseline.metrics.avg_latency_ms,
            }
        )
    return rows


def figure3d(protocols: tuple[str, ...] = ("lbl", "baseline")) -> list[Row]:
    """Fig 3d: 300 B objects with the server pinned to the EU (London)."""
    rows = []
    for protocol in protocols:
        result = _run(_spec(protocol, value_len=300, server_location="london"))
        rows.append(
            {
                "protocol": protocol,
                "throughput_ops_s": result.metrics.throughput_ops_per_s,
                "avg_latency_ms": result.metrics.avg_latency_ms,
            }
        )
    return rows


def figure4(protocols: tuple[str, ...] = ("lbl", "tee", "baseline")) -> list[Row]:
    """Fig 4: EHR (10 B), SmallBank (50 B), e-commerce (40 B) datasets."""
    rows = []
    for dataset_name, dataset in DATASETS.items():
        for protocol in protocols:
            result = _run(_spec(protocol, value_len=dataset.value_len))
            rows.append(
                {
                    "dataset": dataset_name,
                    "value_bytes": dataset.value_len,
                    "protocol": protocol,
                    "throughput_ops_s": result.metrics.throughput_ops_per_s,
                    "avg_latency_ms": result.metrics.avg_latency_ms,
                }
            )
    return rows


def figure6(max_y: int = 6) -> list[Row]:
    """Fig 6: the y-grouping trade-off fixing the optimum at y = 2."""
    return [
        {
            "y": f.y,
            "storage_factor": f.storage_factor,
            "communication_factor": f.communication_factor,
            "total_overhead": f.total,
        }
        for f in overhead_factors(max_y)
    ]


def fhe_noise(
    max_accesses: int = 12, params: FheParams | None = None
) -> list[Row]:
    """§3.3: per-access noise budget of one object under FHE-ORTOA's Proc.

    Runs the actual homomorphic pipeline until the budget exhausts, charting
    the paper's "within about 10 accesses" failure.
    """
    scheme = FheScheme(params or FheParams(n=64, q_bits=120))
    value = bytes(range(60))
    stored = scheme.encrypt_bytes(value)
    rows = [
        {
            "access": 0,
            "noise_budget_bits": scheme.noise_budget(stored),
            "ciphertext_components": stored.size,
            "ciphertext_bytes": stored.size_bytes,
            "decryption_correct": True,
        }
    ]
    for access in range(1, max_accesses + 1):
        stored = scheme.add(
            scheme.multiply(stored, scheme.encrypt_scalar(1)),
            scheme.multiply(scheme.encrypt_bytes(bytes(60)), scheme.encrypt_scalar(0)),
        )
        budget = scheme.noise_budget(stored)
        rows.append(
            {
                "access": access,
                "noise_budget_bits": budget,
                "ciphertext_components": stored.size,
                "ciphertext_bytes": stored.size_bytes,
                "decryption_correct": scheme.decrypt_bytes(stored, 60) == value,
            }
        )
        if budget <= 0:
            break
    return rows


def oram_comparison(num_blocks: int = 32, accesses: int = 60) -> list[Row]:
    """§8 extension: rounds/bytes/stash for three ORAM designs.

    Contrasts PathORAM (2 rounds), the ORTOA-based one-round scheme, and the
    linear-scan privacy-maximal baseline on the same random workload.
    """
    import random as random_module

    from repro.oram import OneRoundOram, PathOram
    from repro.oram.linear_scan import LinearScanOram

    def drive(oram):
        rng = random_module.Random(2)
        for _ in range(accesses):
            block = rng.randrange(num_blocks)
            if rng.random() < 0.5:
                oram.write(block, rng.randbytes(8))
            else:
                oram.read(block)
        return oram

    initial = {i: bytes(8) for i in range(num_blocks)}
    schemes = []
    for name, oram in (
        ("path-oram", PathOram(num_blocks, 8, rng=random_module.Random(1))),
        ("one-round-oram", OneRoundOram(num_blocks, 8, rng=random_module.Random(1))),
        ("linear-scan", LinearScanOram(num_blocks, 8)),
    ):
        oram.initialize(dict(initial))
        drive(oram)
        stash = getattr(oram, "stash", None)
        schemes.append(
            {
                "scheme": name,
                "rounds_per_access": oram.rounds_used / accesses,
                "kb_per_access": oram.bytes_transferred / accesses / 1000,
                "stash_high_water": stash.max_occupancy if stash is not None else 0,
                "wan_ms_per_access_oregon": oram.rounds_used
                / accesses
                * DATACENTER_RTT_MS["oregon"],
            }
        )
    return schemes


def sharded_scaling(
    shards: int = 4,
    num_requests: int = 64,
    in_process: bool = True,
    transport: str = "thread",
    server_batch: int = 1,
    server_window: float | None = None,
) -> list[Row]:
    """§6.2.4 on real sockets: throughput as loopback storage shards are added.

    Unlike :func:`figure3a` (simulated testbed), this boots actual
    :class:`~repro.transport.server.LblTcpServer` instances and drives them
    through the pipelined sharded deployment; each shard applies an
    emulated per-request service time, so capacity grows with shard count
    on any machine (see
    :func:`~repro.transport.cluster.measure_shard_scaling`).  Shard counts
    are the powers of two up to ``shards``.

    Args:
        shards: Largest shard count to measure.
        num_requests: Accesses per data point.
        in_process: Thread-backed shard servers (default) or spawned
            subprocesses.
        transport: ``"thread"`` or ``"async"`` shard servers and clients.
        server_batch: Server-side access window size (``repro run sharded
            --server-batch``); ``1`` (default) keeps the per-request
            dispatch path, ``> 1`` fuses concurrent accesses into windowed
            ``process_many`` calls on every shard.
        server_window: Server-side flush timer in seconds (``--server-window``);
            ``None`` keeps the coalescer default.
    """
    from repro.core.lbl.server_coalesce import DEFAULT_WINDOW_SECONDS
    from repro.transport.cluster import measure_shard_scaling

    counts = [1]
    while counts[-1] * 2 <= shards:
        counts.append(counts[-1] * 2)
    return measure_shard_scaling(
        shard_counts=tuple(counts),
        num_requests=num_requests,
        in_process=in_process,
        transport=transport,
        server_batch=server_batch,
        server_window=(
            DEFAULT_WINDOW_SECONDS if server_window is None else server_window
        ),
    )


def pipeline_depth_sweep(
    pipeline_depth: int = 8,
    num_requests: int = 48,
    emulated_rtt_s: float = 0.01,
    transport: str = "thread",
) -> list[Row]:
    """Lockstep vs pipelined throughput on one loopback shard.

    Sweeps in-flight window depths 1 (lockstep), 2, and ``pipeline_depth``
    against a server that delays each reply by ``emulated_rtt_s`` (standing
    in for the WAN RTTs of Table 2, which pipelining exists to hide).
    """
    from repro.transport.cluster import measure_pipeline_gain

    depths = tuple(sorted({1, 2, max(2, pipeline_depth)}))
    return measure_pipeline_gain(
        depths=depths,
        num_requests=num_requests,
        emulated_rtt_s=emulated_rtt_s,
        transport=transport,
    )


def lbl_kernels(
    workers: int = 0,
    label_cache: int | None = -1,
    num_keys: int = 8,
    num_requests: int = 48,
    value_len: int = 160,
    crypto_backend: str = "auto",
    coalesce_window: float = 0.0,
) -> list[Row]:
    """Batched-kernel throughput: scalar vs batched vs batched+cache.

    Measures in-process LBL accesses per second under the three proxy
    kernel configurations (scalar reference path, batched PRF/AEAD
    kernels, batched kernels with a warm label cache), then drives one
    batch through the sharded deployment's
    :class:`~repro.core.lbl.parallel.ParallelPrepareEngine` so
    ``--workers`` exercises the multi-core prepare path end to end.

    Args:
        workers: Prepare-pool threads for the sharded batch row
            (0 = serial).
        label_cache: ``label_cache_entries`` for the cached rows
            (-1 auto-sizes, ``None`` disables — the cached row is then
            skipped).
        num_keys: Distinct keys in the workload.
        num_requests: Accesses per measured configuration.
        value_len: Object size in bytes (paper default 160).
        crypto_backend: ``"auto"`` (default), ``"stdlib"``, ``"vector"``,
            ``"scalar"`` (forces the per-label reference path on the
            in-process rows), or ``"procpool"`` (the sharded-batch row
            derives labels in a process pool).  See
            ``repro run lbl --crypto-backend``.
        coalesce_window: Flush-timer seconds for the sharded-batch row's
            prepare coalescing stage (``repro run lbl --coalesce-window``);
            ``0`` (default) keeps the per-request prepare path.
    """
    import random
    import time

    from repro.core.lbl import LblOrtoa
    from repro.errors import ConfigurationError
    from repro.types import Request, StoreConfig

    def _measure(store, requests) -> float:
        start = time.perf_counter()
        for request in requests:
            store.access(request)
        return len(requests) / (time.perf_counter() - start)

    def _workload(config: StoreConfig) -> tuple[dict, list]:
        rng = random.Random(1)
        records = {
            f"key-{i:03d}": config.pad(f"value-{i}".encode()) for i in range(num_keys)
        }
        requests = []
        for _ in range(num_requests):
            key = f"key-{rng.randrange(num_keys):03d}"
            if rng.random() < 0.5:
                requests.append(Request.read(key))
            else:
                requests.append(Request.write(key, config.pad(b"updated")))
        return records, requests

    known_backends = ("auto", "stdlib", "vector", "scalar", "procpool")
    if crypto_backend not in known_backends:
        raise ConfigurationError(
            f"unknown crypto backend {crypto_backend!r}; expected one of "
            f"{known_backends}"
        )
    # "scalar" forces the per-label reference path; "procpool" only changes
    # the sharded-batch row (label derivation is a prepare-engine concern).
    force_scalar = crypto_backend == "scalar"
    proxy_backend = (
        "auto" if crypto_backend in ("scalar", "procpool") else crypto_backend
    )
    prepare_backend = "procpool" if crypto_backend == "procpool" else "thread"

    base = StoreConfig(value_len=value_len, group_bits=2, point_and_permute=True)
    cached = replace(base, label_cache_entries=label_cache)
    rows: list[Row] = []

    for mode, config, batched, warm in (
        ("scalar", base, False, False),
        ("batched", base, True, False),
        ("batched+cache", cached, True, True),
    ):
        if warm and label_cache is None:
            continue
        records, requests = _workload(config)
        store = LblOrtoa(
            config,
            rng=random.Random(2),
            batched=batched and not force_scalar,
            crypto_backend=proxy_backend,
        )
        store.initialize(records)
        if warm:
            for request in requests:  # populate + prefetch every key's epoch
                store.access(request)
        ops_per_sec = _measure(store, requests)
        cache = store.proxy.label_cache
        rows.append(
            {
                "mode": mode,
                "workers": "-",
                "ops_per_sec": round(ops_per_sec, 1),
                "cache_hit_rate": round(cache.hit_rate, 3) if cache else "-",
            }
        )

    # End-to-end batch through the parallel prepare engine on one
    # loopback shard (thread-backed server, real wire format).
    from repro.core.sharded import ShardedLblDeployment
    from repro.transport.cluster import ShardCluster

    config = cached if label_cache is not None else base
    records, requests = _workload(config)
    with ShardCluster(1, point_and_permute=True, in_process=True) as cluster:
        deployment = ShardedLblDeployment(
            config,
            cluster.addresses,
            rng=random.Random(2),
            prepare_workers=workers,
            prepare_backend=prepare_backend,
            crypto_backend=proxy_backend,
            coalesce_window=coalesce_window,
        )
        try:
            deployment.initialize(records)
            start = time.perf_counter()
            deployment.access_batch(requests)
            elapsed = time.perf_counter() - start
            cache = deployment.proxy.label_cache
            rows.append(
                {
                    "mode": (
                        "sharded-batch+coalesce"
                        if coalesce_window > 0
                        else "sharded-batch"
                    ),
                    "workers": workers,
                    "ops_per_sec": round(len(requests) / elapsed, 1),
                    "cache_hit_rate": round(cache.hit_rate, 3) if cache else "-",
                }
            )
        finally:
            deployment.close()
    return rows


def dollar_cost() -> list[Row]:
    """§6.3.3: LBL-ORTOA's Google-Cloud cost breakdown."""
    estimate = estimate_lbl_cost()
    return [
        {"item": "storage_gb", "value": estimate.storage_gb},
        {"item": "storage_usd_per_month", "value": estimate.storage_per_month},
        {
            "item": "network_gb_per_1m_accesses",
            "value": estimate.network_gb_per_million_accesses,
        },
        {
            "item": "network_usd_per_1m_accesses",
            "value": estimate.network_per_million_accesses,
        },
        {
            "item": "compute_usd_per_1m_accesses",
            "value": estimate.compute_per_million_accesses,
        },
        {"item": "usd_per_request", "value": estimate.per_request},
    ]


__all__ = [
    "table2",
    "figure2a",
    "figure2b",
    "figure2c",
    "figure2d",
    "figure3a",
    "figure3b",
    "figure3c",
    "figure3d",
    "figure4",
    "figure6",
    "fhe_noise",
    "dollar_cost",
    "oram_comparison",
    "sharded_scaling",
    "pipeline_depth_sweep",
    "lbl_kernels",
]
