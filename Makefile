# Convenience targets for the ORTOA reproduction.

PYTHON ?= python

.PHONY: install test bench reproduce examples clean

install:
	$(PYTHON) setup.py develop || pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure into results/.
reproduce: bench
	@echo "Tables written to results/"

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
