#!/usr/bin/env python
"""Relational data over ORTOA (paper §8: primary-key relational access).

An e-commerce inventory table whose every read and write is operation-type
oblivious, wrapped in rollback protection (FreshnessGuard), so a malicious
warehouse-hosting provider learns neither *what* is stocked, *when* stock
changes, nor can it silently serve stale stock levels.

Run:  python examples/relational_inventory.py
"""

import random

from repro import FreshnessGuard, LblOrtoa, ObliviousTable, Schema, StoreConfig
from repro.errors import OrtoaError
from repro.relational import IntColumn, StrColumn


def main() -> None:
    schema = Schema(
        [
            StrColumn("sku", 10),
            StrColumn("title", 24),
            IntColumn("stock", 4),
            IntColumn("price_cents", 4),
        ],
        primary_key="sku",
    )
    # FreshnessGuard widens values by 8 bytes internally for its version;
    # +1 byte for the table's liveness flag.
    protocol = FreshnessGuard(
        StoreConfig(value_len=schema.row_len + 1, group_bits=2, point_and_permute=True),
        lambda cfg: LblOrtoa(cfg, rng=random.Random(1)),
    )
    inventory = ObliviousTable("inventory", schema, protocol, capacity=32)

    inventory.insert({"sku": "SKU-001", "title": "VINTAGE LANTERN", "stock": 12, "price_cents": 1499})
    inventory.insert({"sku": "SKU-002", "title": "CERAMIC MUG SET", "stock": 40, "price_cents": 899})
    inventory.insert({"sku": "SKU-003", "title": "METAL SIGN RETRO", "stock": 3, "price_cents": 2250})
    print(f"Inserted {len(inventory)} products (each insert = 1 oblivious write).\n")

    # A sale: read stock, decrement, write back — all oblivious accesses.
    row = inventory.get("SKU-003")
    print(f"Sale of {row['title'].strip()!r}: stock {row['stock']} -> {row['stock'] - 1}")
    inventory.update("SKU-003", stock=row["stock"] - 1)

    # A stock-level report: the scan touches every slot, so the provider
    # can't tell which product was of interest.
    print("\nFull oblivious scan (provider sees every slot touched):")
    for item in sorted(inventory.scan(), key=lambda r: r["sku"]):
        print(f"  {item['sku']}: {item['title'].strip():24s} stock={item['stock']:3d}"
              f"  ${item['price_cents'] / 100:.2f}")

    # Rollback attack: the provider restores yesterday's (higher-stock)
    # ciphertext hoping to trigger an oversell.  FreshnessGuard catches it.
    inner = protocol.inner
    victim_key = None
    for slot in range(inventory.capacity):
        key = inventory._slot_key(slot)
        if inventory._slot_by_pk.get("SKU-003") == slot:
            victim_key = key
            break
    assert victim_key is not None
    encoded = inner.keychain.encode_key(victim_key)
    stale = inner.server.store.get(encoded)
    inventory.update("SKU-003", stock=0)  # the real, current state
    inner.server.store.put(encoded, stale)  # provider rolls it back
    try:
        inventory.get("SKU-003")
        print("\nRollback NOT detected — bug!")
    except OrtoaError as exc:  # LBL's label epochs catch it even before the
        # FreshnessGuard version check gets a chance
        print(f"\nProvider rollback detected before it could cause an oversell: "
              f"{type(exc).__name__}")


if __name__ == "__main__":
    main()
