#!/usr/bin/env python
"""A real client/server deployment: LBL-ORTOA over TCP sockets.

The untrusted storage server runs as a TCP service holding zero key
material; the trusted proxy connects over a socket and performs oblivious
reads/writes.  Everything on the wire is exactly the protocol's serialized
messages — run tcpdump on the loopback if you want to check.

Run:  python examples/tcp_deployment.py
"""

import random

from repro import Request, StoreConfig
from repro.transport import LblTcpServer, RemoteLblOrtoa


def main() -> None:
    # --- The storage host (in production: another machine) ---------------
    server = LblTcpServer(point_and_permute=True)
    server.serve_in_background()
    host, port = server.address
    print(f"Untrusted LBL server listening on {host}:{port} "
          "(holds labels only — no keys, no plaintext).\n")

    # --- The trusted side -------------------------------------------------
    config = StoreConfig(value_len=32, group_bits=2, point_and_permute=True)
    with RemoteLblOrtoa(config, (host, port), rng=random.Random(1)) as store:
        store.initialize({
            "patient-77": b"bp=128mmHg",
            "patient-78": b"bp=141mmHg",
        })
        print("Proxy initialized 2 records over the socket.")

        value = store.read("patient-77")
        print(f"Oblivious read over TCP: {value.rstrip(bytes(1))!r}")

        store.write("patient-77", b"bp=119mmHg")
        print(f"Oblivious write, then read-back: "
              f"{store.read('patient-77').rstrip(bytes(1))!r}\n")

        t_read = store.access(Request.read("patient-78"))
        t_write = store.access(Request.write("patient-78", config.pad(b"bp=999")))
        print("Bytes on the actual wire (per request/response):")
        print(f"  read : {t_read.request_bytes:6d} / {t_read.response_bytes} B")
        print(f"  write: {t_write.request_bytes:6d} / {t_write.response_bytes} B")
        print("  identical -> a packet capture cannot tell them apart.")

    server.close()
    print("\nServer stopped.")


if __name__ == "__main__":
    main()
