#!/usr/bin/env python
"""Quickstart: hide your read/write pattern from the storage server.

Demonstrates the public API end to end: create an LBL-ORTOA deployment,
load records, perform reads and writes, and show why the server cannot tell
them apart (identical message shapes, and storage that changes on *every*
access).

Run:  python examples/quickstart.py
"""

from repro import LblOrtoa, Request, StoreConfig


def main() -> None:
    # The §10-optimized configuration: one label per 2 plaintext bits,
    # point-and-permute so the server decrypts one ciphertext per group.
    config = StoreConfig(value_len=32, group_bits=2, point_and_permute=True)
    store = LblOrtoa(config)

    store.initialize(
        {
            "alice": b"balance=100",
            "bob": b"balance=250",
        }
    )
    print("Initialized 2 records (values padded to 32 bytes).\n")

    # --- A write and a read, both one round trip -------------------------
    store.write("alice", b"balance=175")
    value = store.read("alice")
    print(f"alice after write+read: {value.rstrip(bytes(1))!r}\n")

    # --- What the server sees --------------------------------------------
    read_t = store.access(Request.read("bob"))
    write_t = store.access(Request.write("bob", config.pad(b"balance=0")))
    print("Server-visible profile of a READ vs a WRITE to the same key:")
    print(f"  rounds:          {read_t.num_rounds} vs {write_t.num_rounds}")
    print(f"  request bytes:   {read_t.request_bytes} vs {write_t.request_bytes}")
    print(f"  response bytes:  {read_t.response_bytes} vs {write_t.response_bytes}")
    print(
        "  server crypto:   "
        f"{read_t.ops_at('server').aead_dec} vs {write_t.ops_at('server').aead_dec} "
        "decryptions"
    )
    print("  -> byte-for-byte identical shape; the op type is hidden.\n")

    # --- Storage rotates on every access, read or write ------------------
    encoded = store.keychain.encode_key("bob")
    before = [sl.label for sl in store.server.store.get(encoded)]
    store.read("bob")
    after = [sl.label for sl in store.server.store.get(encoded)]
    changed = sum(1 for a, b in zip(before, after) if a != b)
    print(
        f"A read rotated {changed}/{len(before)} stored labels — the server's "
        "state changes identically for reads and writes."
    )

    # The proxy state is tiny: one 8-byte counter per object (§5.3.1).
    print(f"Proxy state: {store.proxy.proxy_state_bytes} bytes for 2 objects.")


if __name__ == "__main__":
    main()
