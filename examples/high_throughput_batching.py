#!/usr/bin/env python
"""Squeezing throughput out of LBL-ORTOA: batching + concurrency + advisor.

Three operational tools this library adds around the core protocol:

1. the §6.3.2 **advisor** picks the protocol for your deployment;
2. **batching** amortizes the WAN round trip over many requests;
3. the **concurrent proxy** serves real threads with per-key serialization.

Run:  python examples/high_throughput_batching.py
"""

import random
import threading

from repro import LblOrtoa, Request, StoreConfig, access_batch
from repro.analysis.advisor import recommend
from repro.core.lbl.concurrent import ConcurrentLblProxy
from repro.sim.network import DATACENTER_RTT_MS, DEFAULT_BANDWIDTH_MBPS


def main() -> None:
    # --- 1. Ask the advisor --------------------------------------------
    for value_len, location in ((160, "oregon"), (600, "oregon"), (600, "london")):
        rec = recommend(value_len=value_len, server_rtt_ms=location)
        print(f"{value_len:3d} B objects, server in {location:7s} -> {rec.protocol:8s} "
              f"(c={rec.rtt_ms:.0f}ms, p={rec.lbl_compute_ms:.1f}ms, "
              f"o={rec.lbl_overhead_ms:.1f}ms)")
    print()

    # --- 2. Batch to amortize the round trip ----------------------------
    config = StoreConfig(value_len=160, group_bits=2, point_and_permute=True)
    store = LblOrtoa(config, rng=random.Random(1))
    store.initialize({f"user-{i}": bytes(160) for i in range(64)})

    rtt = DATACENTER_RTT_MS["oregon"]
    print(f"WAN cost per operation at Oregon RTT ({rtt} ms), by batch size:")
    for batch_size in (1, 4, 16):
        requests = [Request.read(f"user-{i}") for i in range(batch_size)]
        batch = access_batch(store, requests)
        total_bytes = batch.combined.request_bytes + batch.combined.response_bytes
        serialization = total_bytes * 8 / (DEFAULT_BANDWIDTH_MBPS * 1000)
        per_op = (rtt + serialization) / batch_size
        print(f"  batch={batch_size:3d}: {total_bytes / 1000:8.1f} kB on the wire, "
              f"{per_op:6.2f} ms WAN time per op")
    print()

    # --- 3. Serve real threads safely -----------------------------------
    front = ConcurrentLblProxy(store)
    errors: list[Exception] = []

    def worker(worker_id: int) -> None:
        rng = random.Random(worker_id)
        try:
            for _ in range(20):
                key = f"user-{rng.randrange(64)}"
                if rng.random() < 0.3:
                    front.write(key, rng.randbytes(40))
                else:
                    front.read(key)
        except Exception as exc:  # pragma: no cover - demo guard
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    print(f"8 threads completed {front.completed} oblivious operations "
          f"with {len(errors)} errors; per-key label epochs stayed consistent.")


if __name__ == "__main__":
    main()
