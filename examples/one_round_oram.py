#!/usr/bin/env python
"""The §8 extension: a tree ORAM whose read + eviction take one round.

PathORAM needs two round trips per access (read the path, then write it
back).  Building each tree slot as an ORTOA oblivious cell lets a single
pass both fetch the requested block and evict stash blocks — one round trip
per access, with the operation type at every touched slot hidden.

Run:  python examples/one_round_oram.py
"""

import random

from repro import OneRoundOram, PathOram


def drive(oram, reference: dict[int, bytes], accesses: int, rng: random.Random) -> None:
    """Apply a random workload, mirroring every write into ``reference``."""
    for _ in range(accesses):
        block = rng.randrange(oram.num_blocks)
        if rng.random() < 0.5:
            value = rng.randbytes(8)
            reference[block] = value
            oram.write(block, value)
        else:
            oram.read(block)


def main() -> None:
    num_blocks, accesses = 32, 120
    initial = {i: bytes([i]) * 8 for i in range(num_blocks)}

    path_oram = PathOram(num_blocks, 8, rng=random.Random(1))
    path_oram.initialize(dict(initial))
    one_round = OneRoundOram(num_blocks, 8, rng=random.Random(1))
    one_round.initialize(dict(initial))

    reference = dict(initial)
    drive(path_oram, reference, accesses, random.Random(2))
    drive(one_round, dict(initial), accesses, random.Random(2))  # same ops

    print(f"{accesses} random accesses over {num_blocks} blocks:\n")
    header = f"{'':22s}{'rounds':>8s}{'rounds/op':>11s}{'kB moved':>10s}{'stash max':>11s}"
    print(header)
    for name, oram in (("PathORAM (2-round)", path_oram), ("One-round ORAM", one_round)):
        print(
            f"{name:22s}{oram.rounds_used:8d}{oram.rounds_used / accesses:11.1f}"
            f"{oram.bytes_transferred / 1000:10.1f}{oram.stash.max_occupancy:11d}"
        )

    speedup = path_oram.rounds_used / one_round.rounds_used
    print(f"\nRound trips cut by {speedup:.1f}x — on a 148 ms London RTT that is "
          f"{(path_oram.rounds_used - one_round.rounds_used) * 147.73 / 1000:.0f} s "
          "of WAN latency saved over this run.")

    # Functional check: both ORAMs still agree with a plain dict (the
    # reference already reflects the drive phase's writes).
    rng = random.Random(3)
    for _ in range(40):
        block = rng.randrange(num_blocks)
        if rng.random() < 0.5:
            value = rng.randbytes(8)
            reference[block] = value
            path_oram.write(block, value)
            one_round.write(block, value)
        else:
            expected = reference[block]
            assert path_oram.read(block) == expected
            assert one_round.read(block) == expected
    print("Functional check passed: both ORAMs track the reference store.")


if __name__ == "__main__":
    main()
