#!/usr/bin/env python
"""Banking scenario (paper §1 and §6.4): hide *when* customers transact.

The paper's motivating example: even with balances encrypted, an adversary
that can tell writes from reads learns when a user transacted.  This example
runs a SmallBank-style workload (50-byte account records) through all three
practical protocols and shows that (a) functionality is identical, and
(b) for ORTOA the adversary's view of a balance check is the same as a
purchase.

Run:  python examples/banking_smallbank.py
"""

import random

from repro import LblOrtoa, Request, StoreConfig, TeeOrtoa, TwoRoundBaseline
from repro.workloads import build_dataset


def adversary_view(protocol, request):
    """What the honest-but-curious server observes for one request."""
    transcript = protocol.access(request)
    return {
        "rounds": transcript.num_rounds,
        "request_bytes": transcript.request_bytes,
        "response_bytes": transcript.response_bytes,
        "server_puts": transcript.ops_at("server").kv_ops,
    }


def main() -> None:
    config = StoreConfig(value_len=50, group_bits=2, point_and_permute=True)
    accounts = build_dataset("smallbank", num_objects=64, seed=7)
    customers = list(accounts)

    protocols = {
        "2RTT baseline": TwoRoundBaseline(StoreConfig(value_len=50)),
        "TEE-ORTOA": TeeOrtoa(StoreConfig(value_len=50)),
        "LBL-ORTOA": LblOrtoa(config, rng=random.Random(1)),
    }
    for protocol in protocols.values():
        protocol.initialize(accounts)

    alice = customers[0]
    print(f"Customer record ({alice[:16]}…):")
    print(f"  {accounts[alice].rstrip(bytes(1))!r}\n")

    # A balance check (read) vs a purchase (write), per protocol.
    purchase = StoreConfig(value_len=50).pad(b"C000000009900S000000500000A9999999999R123456789")
    for name, protocol in protocols.items():
        check = adversary_view(protocol, Request.read(alice))
        buy = adversary_view(protocol, Request.write(alice, purchase))
        same = check == buy
        print(f"{name}:")
        print(f"  balance check -> {check}")
        print(f"  purchase      -> {buy}")
        print(f"  indistinguishable to the server: {same}")
        print(f"  round trips per operation: {check['rounds']}\n")

    # Functional check: all protocols agree after a mixed workload.
    rng = random.Random(3)
    for _ in range(25):
        customer = rng.choice(customers)
        if rng.random() < 0.4:
            new_balance = StoreConfig(value_len=50).pad(rng.randbytes(20))
            for protocol in protocols.values():
                protocol.write(customer, new_balance)
        else:
            values = {name: p.read(customer) for name, p in protocols.items()}
            assert len(set(values.values())) == 1, "protocols diverged!"
    print("25 mixed operations: all three protocols returned identical data.")
    print("ORTOA did it in half the round trips of the baseline.")


if __name__ == "__main__":
    main()
