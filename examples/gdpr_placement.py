#!/usr/bin/env python
"""Choosing between LBL-ORTOA and the 2RTT baseline (paper §6.3.2 / Fig 3d).

The paper's decision rule: with cross-datacenter RTT ``c``, LBL compute time
``p``, and large-message overhead ``o``, LBL-ORTOA wins when ``c > p + o``.
This example evaluates the rule for a GDPR-style deployment (data pinned to
an EU datacenter, 300-byte records) and for a nearby server, using the
simulated testbed.

Run:  python examples/gdpr_placement.py
"""

from repro import DeploymentSpec, run_experiment
from repro.sim.network import DATACENTER_RTT_MS


def evaluate(location: str, value_len: int) -> None:
    print(f"--- server in {location} (RTT {DATACENTER_RTT_MS[location]} ms), "
          f"{value_len} B objects ---")
    lbl = run_experiment(
        DeploymentSpec(protocol="lbl", value_len=value_len,
                       server_location=location, duration_ms=2000)
    )
    baseline = run_experiment(
        DeploymentSpec(protocol="baseline", value_len=value_len,
                       server_location=location, duration_ms=2000)
    )
    c = DATACENTER_RTT_MS[location]
    p = lbl.metrics.avg_compute_ms
    o = lbl.metrics.avg_comm_overhead_ms
    rule = "LBL-ORTOA" if c > p + o else "2RTT baseline"
    winner = (
        "LBL-ORTOA"
        if lbl.metrics.avg_latency_ms < baseline.metrics.avg_latency_ms
        else "2RTT baseline"
    )
    print(f"  c = {c:.1f} ms, p = {p:.1f} ms, o = {o:.1f} ms  "
          f"->  rule (c > p + o) picks: {rule}")
    print(f"  LBL-ORTOA: {lbl.metrics.avg_latency_ms:6.1f} ms, "
          f"{lbl.metrics.throughput_ops_per_s:7.0f} ops/s")
    print(f"  baseline:  {baseline.metrics.avg_latency_ms:6.1f} ms, "
          f"{baseline.metrics.throughput_ops_per_s:7.0f} ops/s")
    ratio = lbl.metrics.throughput_ops_per_s / baseline.metrics.throughput_ops_per_s
    print(f"  measured winner: {winner}  (LBL throughput = {ratio:.2f}x baseline)\n")


def main() -> None:
    print("The §6.3.2 rule: prefer LBL-ORTOA when one extra WAN round costs",
          "more than LBL's compute + large-message overhead (c > p + o).\n")

    # Figure 3d's GDPR scenario: 300 B objects, server pinned to the EU.
    evaluate("london", value_len=300)

    # The same objects with a nearby server: the extra round is cheap, the
    # large messages are not — the baseline can win.
    evaluate("oregon", value_len=600)

    # Small objects near by: LBL-ORTOA wins again (little overhead).
    evaluate("oregon", value_len=50)


if __name__ == "__main__":
    main()
