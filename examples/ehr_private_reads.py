#!/usr/bin/env python
"""Healthcare scenario (paper §6.4): an EHR store that hides chart updates.

Electronic health records leak clinically sensitive facts through access
*types*: a write to a patient's record means something happened to them.
This example builds the paper's EHR dataset (10-byte resting-blood-pressure
values), serves a clinic's day through LBL-ORTOA, and verifies with the
ROR-RW machinery that a transcript of the day is indistinguishable from a
simulator that never saw which patients were updated.

Run:  python examples/ehr_private_reads.py
"""

import random

from repro import LblOrtoa, StoreConfig
from repro.security.distinguisher import byte_histogram_advantage, shape_fingerprint
from repro.security.games import Access, ideal_lbl_output, real_lbl_output
from repro.types import Operation
from repro.workloads import build_dataset


def main() -> None:
    config = StoreConfig(value_len=10, group_bits=2, point_and_permute=True)
    records = build_dataset("ehr", num_objects=128, seed=5)
    patients = list(records)

    store = LblOrtoa(config, rng=random.Random(1))
    store.initialize(records)
    print(f"Loaded {len(records)} patient records "
          f"({config.value_len} B each, as in the paper's EHR dataset).\n")

    # A clinic day: mostly chart reviews (reads), some new vitals (writes).
    rng = random.Random(11)
    day: list[Access] = []
    for _ in range(40):
        patient = rng.choice(patients)
        if rng.random() < 0.25:
            reading = f"{rng.randint(95, 180):03d}mmHg".encode().ljust(10, b"\x00")
            day.append(Access(Operation.WRITE, patient, reading))
            store.write(patient, reading)
        else:
            day.append(Access(Operation.READ, patient))
            store.read(patient)
    writes = sum(1 for a in day if a.op is Operation.WRITE)
    print(f"Served a 40-access day: {40 - writes} chart reviews, {writes} vitals updates.")

    # ROR-RW check: the day's transcript vs a simulator that saw only keys.
    real = real_lbl_output(config, day, rng=random.Random(2))
    ideal = ideal_lbl_output(config, day, rng=random.Random(3))
    shapes_match = shape_fingerprint(real) == shape_fingerprint(ideal)
    tv_distance = byte_histogram_advantage([real], [ideal])
    print("\nROR-RW empirical check (paper §7):")
    print(f"  message-shape fingerprints identical: {shapes_match}")
    print(f"  byte-distribution total-variation distance: {tv_distance:.4f} "
          "(≈ 0 means statistically indistinguishable)")

    # Tamper detection (§5.4): corrupt a stored label and read.
    from repro.crypto.labels import StoredLabel
    from repro.errors import OrtoaError

    victim = patients[0]
    encoded = store.keychain.encode_key(victim)
    labels = store.server.store.get(encoded)
    labels[0] = StoredLabel(bytes(len(labels[0].label)), labels[0].decrypt_index)
    try:
        store.read(victim)
        print("\nTampering NOT detected — bug!")
    except OrtoaError as exc:
        print(f"\nMalicious-server tampering detected on read (§5.4): {type(exc).__name__}")


if __name__ == "__main__":
    main()
