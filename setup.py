"""Legacy setup shim: this offline environment lacks the ``wheel`` package,
so PEP 517 editable installs fail; ``pip install -e . --no-use-pep517`` uses
this file instead. All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
